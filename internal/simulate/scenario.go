package simulate

// Scenario generators for million-vertex worlds. Unlike Hierarchy —
// whose full-level document membership edges grow quadratically with
// level size — every generator here emits bounded out-degree per vertex,
// so a target of 1e6 vertices yields a few million edges and generation
// stays O(V). The shapes mirror the systems the paper motivates
// (§6's hierarchies) plus the adversarial churn the strategy harness
// exercises; cmd/tgload serialises them as .tgb worlds for bulk-load and
// capacity experiments.

import (
	"fmt"
	"math/rand"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Scenario names a large-world generator shape.
type Scenario string

const (
	// ScenarioOrgChart is a 4-ary management tree: employees are
	// subjects, managers hold tg over their reports (delegation),
	// reports hold w to their manager (reporting), and each employee
	// owns a few rw documents their manager can read.
	ScenarioOrgChart Scenario = "org-chart"
	// ScenarioDocShare is a flat document-sharing system: users in
	// 16-member teams whose leads hold tg over members, documents owned
	// rw by one user and shared r/w with a few random others, plus
	// implicit r edges recording past de facto flows.
	ScenarioDocShare Scenario = "doc-share"
	// ScenarioMilitary is a 5-level classification: units of 8 with a
	// tg-holding commander, a t-edge chain of command downward, level
	// documents written at their level and read one level up.
	ScenarioMilitary Scenario = "military"
	// ScenarioChurn starts from the doc-share shape and replays the
	// adversary strategies' move mix as direct mutations — take/grant
	// propagation, right revocation, vertex deletion — leaving the
	// deleted-vertex holes and implicit closures of a long-lived system.
	ScenarioChurn Scenario = "churn"
)

// Scenarios lists every generator, in stable order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioOrgChart, ScenarioDocShare, ScenarioMilitary, ScenarioChurn}
}

// GenerateScenario builds a world of roughly `vertices` vertices (within
// a few percent; churn deletes some) for the named scenario,
// deterministically in seed.
func GenerateScenario(sc Scenario, vertices int, seed int64) (*graph.Graph, error) {
	if vertices < 8 {
		return nil, fmt.Errorf("simulate: scenario needs at least 8 vertices, got %d", vertices)
	}
	rng := rand.New(rand.NewSource(seed))
	switch sc {
	case ScenarioOrgChart:
		return orgChart(vertices, rng)
	case ScenarioDocShare:
		return docShare(vertices, rng)
	case ScenarioMilitary:
		return military(vertices, rng)
	case ScenarioChurn:
		return churn(vertices, rng)
	default:
		return nil, fmt.Errorf("simulate: unknown scenario %q", sc)
	}
}

func orgChart(n int, rng *rand.Rand) (*graph.Graph, error) {
	g := graph.New(nil)
	g.Grow(n)
	nEmp := n / 4
	emp := make([]graph.ID, nEmp)
	for i := range emp {
		emp[i] = g.MustSubject(fmt.Sprintf("emp%07d", i))
	}
	for i := 1; i < nEmp; i++ {
		boss := emp[(i-1)/4]
		if err := g.AddExplicit(boss, emp[i], rights.TG); err != nil {
			return nil, err
		}
		if err := g.AddExplicit(emp[i], boss, rights.W); err != nil {
			return nil, err
		}
	}
	// Remaining budget becomes per-employee documents (3 each at the
	// default 1/4 split), manager-readable.
	docs := n - nEmp
	for i := 0; i < docs; i++ {
		owner := i % nEmp
		doc := g.MustObject(fmt.Sprintf("doc%07d", i))
		if err := g.AddExplicit(emp[owner], doc, rights.RW); err != nil {
			return nil, err
		}
		if owner > 0 {
			if err := g.AddExplicit(emp[(owner-1)/4], doc, rights.R); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

func docShare(n int, rng *rand.Rand) (*graph.Graph, error) {
	g := graph.New(nil)
	g.Grow(n)
	if _, err := g.Universe().Declare("e"); err != nil {
		return nil, err
	}
	e, _ := g.Universe().Lookup("e")
	nUsers := n / 3
	users := make([]graph.ID, nUsers)
	for i := range users {
		users[i] = g.MustSubject(fmt.Sprintf("usr%07d", i))
	}
	// Teams of 16; the lead (first member) holds tg over the first half
	// of the team — grant-mediated sharing stays possible without the
	// whole team collapsing into one island.
	for i := 1; i < nUsers; i++ {
		if i%16 < 8 {
			lead := users[i/16*16]
			if lead != users[i] {
				if err := g.AddExplicit(lead, users[i], rights.TG); err != nil {
					return nil, err
				}
			}
		}
	}
	docs := n - nUsers
	for i := 0; i < docs; i++ {
		doc := g.MustObject(fmt.Sprintf("doc%07d", i))
		owner := users[rng.Intn(nUsers)]
		if err := g.AddExplicit(owner, doc, rights.RW.With(e)); err != nil {
			return nil, err
		}
		for r := 0; r < 2; r++ {
			reader := users[rng.Intn(nUsers)]
			if reader == owner {
				continue
			}
			if err := g.AddExplicit(reader, doc, rights.R); err != nil {
				return nil, err
			}
			// A third of shares have already been exercised: record the
			// de facto flow as an implicit read.
			if rng.Intn(3) == 0 {
				if err := g.AddImplicit(reader, doc, rights.R); err != nil {
					return nil, err
				}
			}
		}
		if rng.Intn(4) == 0 {
			writer := users[rng.Intn(nUsers)]
			if writer != owner {
				if err := g.AddExplicit(writer, doc, rights.W); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

func military(n int, rng *rand.Rand) (*graph.Graph, error) {
	const levels = 5
	g := graph.New(nil)
	g.Grow(n)
	nSubj := n / 3
	if nSubj < levels {
		nSubj = levels
	}
	subj := make([]graph.ID, nSubj)
	level := make([]int, nSubj)
	for i := range subj {
		level[i] = i * levels / nSubj // contiguous level blocks
		subj[i] = g.MustSubject(fmt.Sprintf("off%d_%06d", level[i], i))
	}
	// Units of 8 within a level: the commander (first member) holds tg
	// over the unit. Chain of command: each commander holds t over one
	// commander of the level below (it can take what subordinates hold).
	var commanders [levels][]graph.ID
	for l := 0; l < levels; l++ {
		lo := l * nSubj / levels
		hi := (l + 1) * nSubj / levels
		for i := lo; i < hi; i += 8 {
			end := i + 8
			if end > hi {
				end = hi
			}
			cmd := subj[i]
			commanders[l] = append(commanders[l], cmd)
			for j := i + 1; j < end; j++ {
				if err := g.AddExplicit(cmd, subj[j], rights.TG); err != nil {
					return nil, err
				}
			}
		}
	}
	for l := 0; l < levels-1; l++ {
		for _, cmd := range commanders[l] {
			if len(commanders[l+1]) == 0 {
				continue
			}
			sub := commanders[l+1][rng.Intn(len(commanders[l+1]))]
			if err := g.AddExplicit(cmd, sub, rights.T); err != nil {
				return nil, err
			}
		}
	}
	// Level documents: written rw at their level, read one level up
	// (read-down from the higher clearance).
	docs := n - nSubj
	for i := 0; i < docs; i++ {
		doc := g.MustObject(fmt.Sprintf("doc%07d", i))
		w := rng.Intn(nSubj)
		if err := g.AddExplicit(subj[w], doc, rights.RW); err != nil {
			return nil, err
		}
		if l := level[w]; l > 0 {
			lo := (l - 1) * nSubj / levels
			hi := l * nSubj / levels
			if hi > lo {
				reader := lo + rng.Intn(hi-lo)
				if err := g.AddExplicit(subj[reader], doc, rights.R); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// churn replays the adversary strategies' move mix over a doc-share base
// as direct graph mutations: take propagation (s holds t over u, u holds
// α over v ⇒ s gains α over v), grant propagation (s holds g over u ⇒ u
// gains a right s holds), de facto reads recorded as implicit edges,
// revocation and account deletion. The result carries the scar tissue a
// long-lived system accumulates — deleted-vertex holes, revoked labels,
// implicit closures — which the incremental island index and reach rows
// must absorb.
func churn(n int, rng *rand.Rand) (*graph.Graph, error) {
	g, err := docShare(n, rng)
	if err != nil {
		return nil, err
	}
	subjects := g.Subjects()
	all := g.Vertices()
	steps := n / 4
	for i := 0; i < steps; i++ {
		s := subjects[rng.Intn(len(subjects))]
		if !g.Valid(s) {
			continue
		}
		switch rng.Intn(10) {
		case 0, 1, 2: // take propagation across a random t-capable hop
			out := g.Out(s)
			if len(out) == 0 {
				continue
			}
			h := out[rng.Intn(len(out))]
			if !h.Explicit.Has(rights.Take) {
				continue
			}
			uOut := g.Out(h.Other)
			if len(uOut) == 0 {
				continue
			}
			h2 := uOut[rng.Intn(len(uOut))]
			if h2.Other != s && !h2.Explicit.Empty() {
				if err := g.AddExplicit(s, h2.Other, h2.Explicit); err != nil {
					return nil, err
				}
			}
		case 3, 4, 5: // grant propagation to a granted peer
			out := g.Out(s)
			if len(out) == 0 {
				continue
			}
			h := out[rng.Intn(len(out))]
			if !h.Explicit.Has(rights.Grant) {
				continue
			}
			tgt := all[rng.Intn(len(all))]
			if tgt != h.Other && g.Valid(tgt) {
				if err := g.AddExplicit(h.Other, tgt, rights.R); err != nil {
					return nil, err
				}
			}
		case 6, 7: // exercised read becomes an implicit flow
			out := g.Out(s)
			if len(out) == 0 {
				continue
			}
			h := out[rng.Intn(len(out))]
			if h.Explicit.Has(rights.Read) {
				if err := g.AddImplicit(s, h.Other, rights.R); err != nil {
					return nil, err
				}
			}
		case 8: // revocation
			out := g.Out(s)
			if len(out) == 0 {
				continue
			}
			h := out[rng.Intn(len(out))]
			if err := g.RemoveExplicit(s, h.Other, rights.R); err != nil {
				return nil, err
			}
		case 9: // account/document deletion (rare; leaves ID holes)
			if rng.Intn(8) == 0 {
				v := all[rng.Intn(len(all))]
				if g.Valid(v) && v != s {
					if err := g.DeleteVertex(v); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return g, nil
}
