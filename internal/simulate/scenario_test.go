package simulate

import (
	"bytes"
	"testing"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
	"takegrant/internal/tgio"
)

func TestGenerateScenarioShapes(t *testing.T) {
	const target = 2000
	for _, sc := range Scenarios() {
		g, err := GenerateScenario(sc, target, 42)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if errs := g.Validate(); errs != nil {
			t.Fatalf("%s: invalid graph: %v", sc, errs)
		}
		n := g.NumVertices()
		if n < target*8/10 || n > target*11/10 {
			t.Fatalf("%s: %d vertices for target %d", sc, n, target)
		}
		if len(g.Subjects()) == 0 || len(g.Objects()) == 0 {
			t.Fatalf("%s: missing a vertex kind", sc)
		}
		if g.NumEdges() < n/2 {
			t.Fatalf("%s: suspiciously sparse: %d edges over %d vertices", sc, g.NumEdges(), n)
		}
		// Bounded degree: no vertex should collect more than a small
		// constant-ish out-degree (log-factor slack for random targets).
		s := g.Snapshot()
		for v := 0; v < s.Cap(); v++ {
			if dst, _ := s.Out(graph.ID(v)); len(dst) > 64 {
				t.Fatalf("%s: vertex %d has out-degree %d", sc, v, len(dst))
			}
		}
		// Some delegation structure must exist: at least one tg edge
		// between subjects (islands are what the decision procedures
		// chew on).
		tg := false
		for _, e := range g.Edges() {
			if e.Explicit.HasAny(rights.TG) && g.IsSubject(e.Src) && g.IsSubject(e.Dst) {
				tg = true
				break
			}
		}
		if !tg {
			t.Fatalf("%s: no subject-to-subject tg edges", sc)
		}
	}
}

func TestGenerateScenarioDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		a, err := GenerateScenario(sc, 1200, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateScenario(sc, 1200, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("%s: same seed, different worlds", sc)
		}
	}
}

// TestScenarioBinaryRoundTrip pushes every scenario shape through the
// .tgb codec — the path tgload -gen uses to emit worlds.
func TestScenarioBinaryRoundTrip(t *testing.T) {
	for _, sc := range Scenarios() {
		g, err := GenerateScenario(sc, 1500, 99)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tgio.EncodeBinary(&buf, g); err != nil {
			t.Fatalf("%s: encode: %v", sc, err)
		}
		dec, err := tgio.DecodeBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", sc, err)
		}
		if tgio.WriteString(dec) != tgio.WriteString(g) {
			t.Fatalf("%s: binary round trip changed the world", sc)
		}
	}
}

func TestGenerateScenarioErrors(t *testing.T) {
	if _, err := GenerateScenario("no-such", 1000, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := GenerateScenario(ScenarioOrgChart, 3, 1); err == nil {
		t.Fatal("tiny target accepted")
	}
}
