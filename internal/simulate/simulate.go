// Package simulate generates hierarchical protection-system workloads and
// drives them with fully corrupt subject populations: every subject applies
// whatever rules advance a breach. It provides the Monte-Carlo harness for
// experiment E11 (soundness under fuzzing: guarded systems never breach,
// unguarded ones almost always do) and the workload generators behind the
// scaling benchmarks.
package simulate

import (
	"fmt"
	"math/rand"

	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// Spec parameterises a generated hierarchical world.
type Spec struct {
	// Levels and SubjectsPerLevel shape the linear classification.
	Levels, SubjectsPerLevel int
	// DocsPerLevel adds classified documents readable/writable by their
	// level's subjects.
	DocsPerLevel int
	// ExtraRights sprinkles benign non-rw rights (an "e" execute right)
	// between random vertices.
	ExtraRights int
	// CrossTG adds dangerous take/grant edges between random subjects of
	// different levels — the latent structure a restriction must defang.
	CrossTG int
	// Seed drives the generator.
	Seed int64
}

// World is a generated workload.
type World struct {
	C *hierarchy.Classification
	S *hierarchy.Structure
	// Docs[levelName] lists the level's documents.
	Docs map[string][]graph.ID
}

// G returns the world's protection graph.
func (w *World) G() *graph.Graph { return w.C.G }

// Hierarchy builds a world per the spec. The classification structure is
// computed before the cross tg edges are added conceptually — but since
// take/grant labels never contribute de facto flows, computing it after
// yields the same levels.
func Hierarchy(spec Spec) (*World, error) {
	if spec.Levels < 2 {
		return nil, fmt.Errorf("simulate: need at least 2 levels")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	c, err := hierarchy.Linear(spec.Levels, spec.SubjectsPerLevel)
	if err != nil {
		return nil, err
	}
	g := c.G
	e, err := g.Universe().Declare("e")
	if err != nil {
		return nil, err
	}
	w := &World{C: c, Docs: make(map[string][]graph.ID)}
	for _, name := range c.Order {
		for d := 0; d < spec.DocsPerLevel; d++ {
			doc, err := g.AddObject(fmt.Sprintf("%s_doc%d", name, d+1))
			if err != nil {
				return nil, err
			}
			for _, s := range c.Members[name] {
				if err := g.AddExplicit(s, doc, rights.RW); err != nil {
					return nil, err
				}
			}
			w.Docs[name] = append(w.Docs[name], doc)
		}
	}
	vs := g.Vertices()
	for i := 0; i < spec.ExtraRights; i++ {
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a != b && g.IsSubject(a) {
			g.AddExplicit(a, b, rights.Of(e))
		}
	}
	subs := g.Subjects()
	for i := 0; i < spec.CrossTG; i++ {
		a, b := subs[rng.Intn(len(subs))], subs[rng.Intn(len(subs))]
		if a != b {
			set := rights.T
			if rng.Intn(2) == 0 {
				set = rights.G
			}
			g.AddExplicit(a, b, set)
		}
	}
	w.S = hierarchy.AnalyzeRW(g)
	return w, nil
}

// Outcome reports one adversarial run.
type Outcome struct {
	// Steps is how many rule selections the adversary attempted.
	Steps int
	// Applied and Refused count executor decisions.
	Applied, Refused int
	// Breached is true when the audit found a forbidden flow; BreachStep
	// is the step index where it first appeared (1-based).
	Breached   bool
	BreachStep int
}

// Adversary runs an all-corrupt population against the world for at most
// maxSteps rule applications under the given restriction (Unrestricted for
// the baseline). Rule selection is greedy-random: rules that complete
// cross-level read/write edges are preferred, mirroring attackers who know
// what they are after.
func Adversary(w *World, r restrict.Restriction, maxSteps int, rng *rand.Rand) Outcome {
	g := w.G()
	guard := restrict.NewGuarded(g, r)
	auditor := restrict.NewCombined(w.S)
	var out Outcome
	opts := &rules.EnumerateOptions{DeJure: true, DeFacto: true}
	for out.Steps = 1; out.Steps <= maxSteps; out.Steps++ {
		apps := rules.Enumerate(g, opts)
		if len(apps) == 0 {
			out.Steps--
			break
		}
		app := pickGreedy(g, w.S, apps, rng)
		if err := guard.Apply(app); err != nil {
			out.Refused++
			continue
		}
		out.Applied++
		if !out.Breached && len(auditor.Audit(g)) > 0 {
			out.Breached = true
			out.BreachStep = out.Steps
		}
	}
	return out
}

// pickGreedy prefers rule applications that add cross-level read or write
// authority, then cross-level take/grant, then anything.
func pickGreedy(g *graph.Graph, s *hierarchy.Structure, apps []rules.Application, rng *rand.Rand) rules.Application {
	best, bestScore := -1, -1
	count := 0
	for i, app := range apps {
		score := scoreApp(s, app)
		switch {
		case score > bestScore:
			best, bestScore, count = i, score, 1
		case score == bestScore:
			count++
			if rng.Intn(count) == 0 {
				best = i
			}
		}
	}
	_ = best
	// Mix exploration in: with probability 1/4 pick uniformly.
	if rng.Intn(4) == 0 {
		return apps[rng.Intn(len(apps))]
	}
	return apps[best]
}

func scoreApp(s *hierarchy.Structure, app rules.Application) int {
	var src, dst graph.ID
	switch app.Op {
	case rules.OpTake:
		src, dst = app.X, app.Z
	case rules.OpGrant:
		src, dst = app.Y, app.Z
	default:
		return 0
	}
	ls, ld := s.LevelOf(src), s.LevelOf(dst)
	if ls < 0 || ld < 0 || ls == ld {
		return 0
	}
	if app.Rights.HasAny(rights.RW) && !s.HigherLevel(ls, ld) == app.Rights.Has(rights.Read) {
		// reads toward higher levels / writes toward lower ones
		return 3
	}
	if app.Rights.HasAny(rights.RW) {
		return 2
	}
	if app.Rights.HasAny(rights.TG) {
		return 1
	}
	return 0
}

// Summary aggregates Monte-Carlo trials.
type Summary struct {
	Trials       int
	Breaches     int
	MeanBreachAt float64
	MeanApplied  float64
	MeanRefused  float64
}

// BreachRate returns the fraction of trials that breached.
func (s Summary) BreachRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Breaches) / float64(s.Trials)
}

// MonteCarlo runs repeated adversarial trials over freshly generated
// worlds. mk builds the restriction per world (nil means unrestricted).
func MonteCarlo(spec Spec, mk func(*World) restrict.Restriction, trials, maxSteps int) Summary {
	var sum Summary
	sum.Trials = trials
	var breachSteps, applied, refused int
	for i := 0; i < trials; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)*7919
		w, err := Hierarchy(s)
		if err != nil {
			continue
		}
		var r restrict.Restriction = restrict.Unrestricted{}
		if mk != nil {
			r = mk(w)
		}
		rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
		out := Adversary(w, r, maxSteps, rng)
		if out.Breached {
			sum.Breaches++
			breachSteps += out.BreachStep
		}
		applied += out.Applied
		refused += out.Refused
	}
	if sum.Breaches > 0 {
		sum.MeanBreachAt = float64(breachSteps) / float64(sum.Breaches)
	}
	if trials > 0 {
		sum.MeanApplied = float64(applied) / float64(trials)
		sum.MeanRefused = float64(refused) / float64(trials)
	}
	return sum
}
