package simulate

import (
	"math/rand"
	"testing"

	"takegrant/internal/restrict"
	"takegrant/internal/rights"
)

func TestHierarchySpecValidation(t *testing.T) {
	if _, err := Hierarchy(Spec{Levels: 1, SubjectsPerLevel: 1}); err == nil {
		t.Error("single level accepted")
	}
}

func TestHierarchyShape(t *testing.T) {
	w, err := Hierarchy(Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 2, ExtraRights: 5, CrossTG: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Docs["L2"]); got != 2 {
		t.Errorf("docs at L2 = %d", got)
	}
	if w.S.NumLevels() < 3 {
		t.Errorf("levels = %d", w.S.NumLevels())
	}
	// Docs are classified at their level.
	doc := w.Docs["L3"][0]
	lvl, ok := w.S.ObjectLevel(doc)
	if !ok || lvl != w.S.LevelOf(w.C.Members["L3"][0]) {
		t.Errorf("doc level = %d,%v", lvl, ok)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	spec := Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, ExtraRights: 4, CrossTG: 2, Seed: 7}
	w1, err1 := Hierarchy(spec)
	w2, err2 := Hierarchy(spec)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if w1.G().Canonical() != w2.G().Canonical() {
		t.Error("generation not deterministic")
	}
}

func TestAdversaryBreachesUnrestricted(t *testing.T) {
	w, err := Hierarchy(Spec{Levels: 2, SubjectsPerLevel: 2, DocsPerLevel: 1, CrossTG: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := Adversary(w, restrict.Unrestricted{}, 200, rand.New(rand.NewSource(1)))
	if !out.Breached {
		t.Error("unrestricted adversary with cross tg edges did not breach")
	}
	if out.Applied == 0 {
		t.Error("nothing applied")
	}
}

func TestAdversaryNeverBreachesGuarded(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		w, err := Hierarchy(Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, ExtraRights: 4, CrossTG: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out := Adversary(w, restrict.NewCombined(w.S), 150, rand.New(rand.NewSource(seed)))
		if out.Breached {
			t.Errorf("seed %d: guarded adversary breached at step %d", seed, out.BreachStep)
		}
		if out.Refused == 0 {
			t.Errorf("seed %d: guard refused nothing despite cross edges", seed)
		}
	}
}

func TestMonteCarloContrast(t *testing.T) {
	spec := Spec{Levels: 2, SubjectsPerLevel: 2, DocsPerLevel: 1, CrossTG: 4, Seed: 100}
	unres := MonteCarlo(spec, nil, 8, 150)
	guarded := MonteCarlo(spec, func(w *World) restrict.Restriction {
		return restrict.NewCombined(w.S)
	}, 8, 150)
	if guarded.Breaches != 0 {
		t.Errorf("guarded breaches = %d", guarded.Breaches)
	}
	if unres.BreachRate() < 0.5 {
		t.Errorf("unrestricted breach rate = %.2f, expected most trials to breach", unres.BreachRate())
	}
	if guarded.MeanRefused == 0 {
		t.Error("guard never refused")
	}
}

func TestBenignWorldQuiet(t *testing.T) {
	// Without cross tg edges the unrestricted adversary cannot breach
	// either — Theorem 4.3's conspiracy immunity.
	spec := Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, ExtraRights: 3, Seed: 11}
	sum := MonteCarlo(spec, nil, 6, 120)
	if sum.Breaches != 0 {
		t.Errorf("benign world breached %d times", sum.Breaches)
	}
	_ = rights.R
}
