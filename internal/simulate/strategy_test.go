package simulate

import (
	"math/rand"
	"testing"

	"takegrant/internal/restrict"
)

func TestStrategyStrings(t *testing.T) {
	if StrategyRandom.String() != "random" || StrategyGreedy.String() != "greedy" ||
		StrategyOracle.String() != "oracle" || Strategy(9).String() != "strategy?" {
		t.Error("strategy names wrong")
	}
}

func TestOracleBreachesFast(t *testing.T) {
	spec := Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, CrossTG: 4, Seed: 5}
	w, err := Hierarchy(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := AdversaryWithStrategy(w, restrict.Unrestricted{}, 100, rand.New(rand.NewSource(1)), StrategyOracle)
	if !out.Breached {
		t.Fatal("oracle did not breach unrestricted world")
	}
	// Oracle plans are short: a handful of takes/grants.
	if out.BreachStep > 20 {
		t.Errorf("oracle breach took %d steps", out.BreachStep)
	}
}

func TestOracleBlockedByGuard(t *testing.T) {
	spec := Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, CrossTG: 4, Seed: 5}
	for seed := int64(0); seed < 4; seed++ {
		s := spec
		s.Seed = seed
		w, err := Hierarchy(s)
		if err != nil {
			t.Fatal(err)
		}
		out := AdversaryWithStrategy(w, restrict.NewCombined(w.S), 100, rand.New(rand.NewSource(seed)), StrategyOracle)
		if out.Breached {
			t.Errorf("seed %d: oracle breached the guarded system", seed)
		}
	}
}

func TestRandomStrategyRuns(t *testing.T) {
	spec := Spec{Levels: 2, SubjectsPerLevel: 2, DocsPerLevel: 1, CrossTG: 2, Seed: 9}
	w, err := Hierarchy(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := AdversaryWithStrategy(w, restrict.Unrestricted{}, 60, rand.New(rand.NewSource(2)), StrategyRandom)
	if out.Applied == 0 {
		t.Error("random strategy applied nothing")
	}
}

func TestOracleFallsBackWhenNoBreach(t *testing.T) {
	// Without cross edges there is no provable breach; oracle degrades to
	// greedy play and still cannot breach (Theorem 4.3).
	spec := Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, Seed: 12}
	w, err := Hierarchy(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := AdversaryWithStrategy(w, restrict.Unrestricted{}, 60, rand.New(rand.NewSource(3)), StrategyOracle)
	if out.Breached {
		t.Error("breach in a benign world")
	}
}
