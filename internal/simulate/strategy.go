package simulate

import (
	"math/rand"

	"takegrant/internal/analysis"
	"takegrant/internal/graph"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
)

// Strategy selects how the adversary picks rules.
type Strategy uint8

const (
	// StrategyRandom applies uniformly random applicable rules.
	StrategyRandom Strategy = iota
	// StrategyGreedy prefers rules completing cross-level r/w edges
	// (the default Adversary behaviour).
	StrategyGreedy
	// StrategyOracle synthesises a breach derivation with the analysis
	// package and replays it — the strongest attacker the model admits.
	StrategyOracle
)

func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyGreedy:
		return "greedy"
	case StrategyOracle:
		return "oracle"
	default:
		return "strategy?"
	}
}

// AdversaryWithStrategy runs one adversarial episode with the chosen rule
// selection. Oracle attackers plan a read-up theft of the highest
// document for the lowest subject and replay it; when no plan exists
// they degrade to greedy play.
func AdversaryWithStrategy(w *World, r restrict.Restriction, maxSteps int, rng *rand.Rand, strat Strategy) Outcome {
	switch strat {
	case StrategyOracle:
		if out, ok := oracleRun(w, r, maxSteps); ok {
			return out
		}
		fallthrough
	case StrategyGreedy:
		return Adversary(w, r, maxSteps, rng)
	default:
		return randomRun(w, r, maxSteps, rng)
	}
}

func randomRun(w *World, r restrict.Restriction, maxSteps int, rng *rand.Rand) Outcome {
	g := w.G()
	guard := restrict.NewGuarded(g, r)
	auditor := restrict.NewCombined(w.S)
	var out Outcome
	opts := &rules.EnumerateOptions{DeJure: true, DeFacto: true}
	for out.Steps = 1; out.Steps <= maxSteps; out.Steps++ {
		apps := rules.Enumerate(g, opts)
		if len(apps) == 0 {
			out.Steps--
			break
		}
		if err := guard.Apply(apps[rng.Intn(len(apps))]); err != nil {
			out.Refused++
			continue
		}
		out.Applied++
		if !out.Breached && len(auditor.Audit(g)) > 0 {
			out.Breached = true
			out.BreachStep = out.Steps
		}
	}
	return out
}

// oracleRun plans the most damaging read-up it can prove and replays the
// synthesized derivation through the guard.
func oracleRun(w *World, r restrict.Restriction, maxSteps int) (Outcome, bool) {
	g := w.G()
	target, thief, ok := juiciestBreach(w)
	if !ok {
		return Outcome{}, false
	}
	d, err := analysis.SynthesizeShare(g, rights.Read, thief, target)
	if err != nil {
		return Outcome{}, false
	}
	guard := restrict.NewGuarded(g, r)
	auditor := restrict.NewCombined(w.S)
	var out Outcome
	for _, app := range d {
		if out.Steps >= maxSteps {
			break
		}
		out.Steps++
		if err := guard.Apply(app); err != nil {
			out.Refused++
			// The plan is now invalid downstream; an oracle would replan,
			// but against the combined restriction every replan dies at
			// the same final edge, so stop here.
			break
		}
		out.Applied++
		if !out.Breached && len(auditor.Audit(g)) > 0 {
			out.Breached = true
			out.BreachStep = out.Steps
		}
	}
	return out, true
}

// juiciestBreach finds a (lowest subject, higher document) pair with a
// provable unrestricted read-up.
func juiciestBreach(w *World) (target, thief graph.ID, ok bool) {
	g := w.G()
	var lows []graph.ID
	for _, s := range g.Subjects() {
		lows = append(lows, s)
	}
	for _, name := range w.C.Order {
		for _, doc := range w.Docs[name] {
			docLvl, has := w.S.ObjectLevel(doc)
			if !has {
				continue
			}
			for _, s := range lows {
				if w.S.HigherLevel(docLvl, w.S.LevelOf(s)) &&
					analysis.CanShare(g, rights.Read, s, doc) {
					return doc, s, true
				}
			}
		}
	}
	return graph.None, graph.None, false
}
