package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 10_000; i++ {
		if err := b.Charge(1); err != nil {
			t.Fatalf("nil budget charged: %v", err)
		}
	}
	if b.Err() != nil || b.Visited() != 0 {
		t.Fatalf("nil budget reported state: err=%v visited=%d", b.Err(), b.Visited())
	}
}

func TestNewFreeBudgetIsNil(t *testing.T) {
	if b := New(nil, 0, 0); b != nil {
		t.Fatalf("New(nil, 0, 0) = %v, want nil", b)
	}
}

func TestVisitedLimitTrips(t *testing.T) {
	b := New(nil, 100, 0)
	var err error
	for i := 0; i < 200; i++ {
		if err = b.Charge(1); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Reason != "visited" {
		t.Fatalf("err = %#v, want visited ExhaustedError", err)
	}
	if ex.Visited != 101 || ex.Limit != 100 {
		t.Fatalf("visited=%d limit=%d, want 101/100", ex.Visited, ex.Limit)
	}
	// Sticky: later charges fail without recounting.
	if err2 := b.Charge(1); !errors.Is(err2, ErrExhausted) {
		t.Fatalf("second charge = %v", err2)
	}
}

func TestDeadlineTrips(t *testing.T) {
	b := New(nil, 0, time.Nanosecond)
	time.Sleep(time.Millisecond)
	// The deadline is polled every pollStride charges; drive past one stride.
	var err error
	for i := 0; i < pollStride+1; i++ {
		if err = b.Charge(1); err != nil {
			break
		}
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline ExhaustedError", err)
	}
}

func TestErrPollsDeadlineWithoutCharges(t *testing.T) {
	b := New(nil, 0, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if err := b.Err(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Err() = %v, want ErrExhausted", err)
	}
}

func TestContextCancellationTrips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, 0, 0)
	if err := b.Err(); err != nil {
		t.Fatalf("pre-cancel Err() = %v", err)
	}
	cancel()
	if err := b.Err(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("post-cancel Err() = %v, want ErrExhausted", err)
	}
	var ex *ExhaustedError
	if !errors.As(b.Err(), &ex) || ex.Reason != "canceled" {
		t.Fatalf("reason = %v, want canceled", b.Err())
	}
}

func TestChargeUnderLimitHolds(t *testing.T) {
	b := New(nil, 1_000_000, time.Hour)
	for i := 0; i < 10_000; i++ {
		if err := b.Charge(1); err != nil {
			t.Fatalf("charge %d tripped: %v", i, err)
		}
	}
	if b.Visited() != 10_000 {
		t.Fatalf("visited = %d, want 10000", b.Visited())
	}
}

func TestNilGroupIsUnlimited(t *testing.T) {
	var gr *Group
	wb := gr.Worker()
	if wb != nil {
		t.Fatalf("nil group minted a non-nil worker budget")
	}
	if gr.Err() != nil || gr.Visited() != 0 {
		t.Fatalf("nil group reported state")
	}
	var b *Budget
	if b.Group() != nil {
		t.Fatalf("nil budget derived a non-nil group")
	}
}

func TestGroupSharedLimitTripsAcrossWorkers(t *testing.T) {
	b := New(nil, 5000, 0)
	gr := b.Group()
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			wb := gr.Worker()
			var err error
			for i := 0; i < 100_000 && err == nil; i++ {
				err = wb.Charge(1)
			}
			done <- err
		}()
	}
	tripped := 0
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			tripped++
			if !errors.Is(err, ErrExhausted) {
				t.Fatalf("worker error does not wrap ErrExhausted: %v", err)
			}
		}
	}
	if tripped == 0 {
		t.Fatalf("no worker observed the shared limit")
	}
	if gr.Err() == nil {
		t.Fatalf("group did not record the trip")
	}
	// The group inherited what remained of b's cap; folding the group's
	// visited back keeps the parent consistent (and trips it here).
	if err := b.Charge(gr.Visited()); !errors.Is(err, ErrExhausted) {
		t.Fatalf("parent fold-in: want ErrExhausted, got %v", err)
	}
}

func TestGroupInheritsRemainingAllowance(t *testing.T) {
	b := New(nil, 2000, 0)
	if err := b.Charge(1500); err != nil {
		t.Fatal(err)
	}
	gr := b.Group()
	wb := gr.Worker()
	var err error
	for i := 0; i < 2000 && err == nil; i++ {
		err = wb.Charge(1)
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("worker on a mostly-spent parent should trip early, got %v", err)
	}
}

func TestGroupContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, 0, 0)
	gr := b.Group()
	wb := gr.Worker()
	cancel()
	var err error
	for i := 0; i < 5000 && err == nil; i++ {
		err = wb.Charge(1)
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("canceled context did not trip the group, got %v", err)
	}
}

func TestWorkerFlushReportsTail(t *testing.T) {
	b := New(nil, 100, 0)
	gr := b.Group()
	wb := gr.Worker()
	for i := 0; i < 10; i++ {
		if err := wb.Charge(1); err != nil {
			t.Fatal(err)
		}
	}
	// Only the first charge reached the group (poll=1, then stride-paced):
	// the other nine ride in the worker until it flushes.
	if got := gr.Visited(); got != 1 {
		t.Fatalf("pre-flush group visited = %d, want 1", got)
	}
	wb.Flush()
	if got := gr.Visited(); got != 10 {
		t.Fatalf("post-flush group visited = %d, want 10", got)
	}
	wb.Flush() // idempotent: nothing new to report
	if got := gr.Visited(); got != 10 {
		t.Fatalf("re-flush group visited = %d, want 10", got)
	}
}
