package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 10_000; i++ {
		if err := b.Charge(1); err != nil {
			t.Fatalf("nil budget charged: %v", err)
		}
	}
	if b.Err() != nil || b.Visited() != 0 {
		t.Fatalf("nil budget reported state: err=%v visited=%d", b.Err(), b.Visited())
	}
}

func TestNewFreeBudgetIsNil(t *testing.T) {
	if b := New(nil, 0, 0); b != nil {
		t.Fatalf("New(nil, 0, 0) = %v, want nil", b)
	}
}

func TestVisitedLimitTrips(t *testing.T) {
	b := New(nil, 100, 0)
	var err error
	for i := 0; i < 200; i++ {
		if err = b.Charge(1); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Reason != "visited" {
		t.Fatalf("err = %#v, want visited ExhaustedError", err)
	}
	if ex.Visited != 101 || ex.Limit != 100 {
		t.Fatalf("visited=%d limit=%d, want 101/100", ex.Visited, ex.Limit)
	}
	// Sticky: later charges fail without recounting.
	if err2 := b.Charge(1); !errors.Is(err2, ErrExhausted) {
		t.Fatalf("second charge = %v", err2)
	}
}

func TestDeadlineTrips(t *testing.T) {
	b := New(nil, 0, time.Nanosecond)
	time.Sleep(time.Millisecond)
	// The deadline is polled every pollStride charges; drive past one stride.
	var err error
	for i := 0; i < pollStride+1; i++ {
		if err = b.Charge(1); err != nil {
			break
		}
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline ExhaustedError", err)
	}
}

func TestErrPollsDeadlineWithoutCharges(t *testing.T) {
	b := New(nil, 0, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if err := b.Err(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("Err() = %v, want ErrExhausted", err)
	}
}

func TestContextCancellationTrips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, 0, 0)
	if err := b.Err(); err != nil {
		t.Fatalf("pre-cancel Err() = %v", err)
	}
	cancel()
	if err := b.Err(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("post-cancel Err() = %v, want ErrExhausted", err)
	}
	var ex *ExhaustedError
	if !errors.As(b.Err(), &ex) || ex.Reason != "canceled" {
		t.Fatalf("reason = %v, want canceled", b.Err())
	}
}

func TestChargeUnderLimitHolds(t *testing.T) {
	b := New(nil, 1_000_000, time.Hour)
	for i := 0; i < 10_000; i++ {
		if err := b.Charge(1); err != nil {
			t.Fatalf("charge %d tripped: %v", i, err)
		}
	}
	if b.Visited() != 10_000 {
		t.Fatalf("visited = %d, want 10000", b.Visited())
	}
}
