// Package budget bounds the work a decision procedure may perform.
//
// The paper's complexity results (Corollaries 5.6/5.7) make every decision
// procedure polynomial in |V|·|Q| and |E|·|Q| — but polynomial on a
// multi-million-edge protection graph is still long enough that a reference
// monitor must be able to cancel, bound and shed work. A Budget carries the
// three ways a computation can be cut short:
//
//   - a deadline (wall-clock),
//   - a cap on product states visited (the |V|·|Q| term, measured),
//   - a context whose cancellation aborts the work (client disconnect).
//
// Budgets are threaded through the closure loops of the analysis package
// and the product search of the relang package. The hot-path cost is one
// counter increment and one comparison per charge; the clock and the
// context are polled only every pollStride charges, so a budget never adds
// a syscall per visited state.
//
// All methods are safe on a nil *Budget, which means "unlimited": the
// uninstrumented entry points pass nil and pay a pointer test.
//
// A Budget is owned by one logical operation (one HTTP request, one CLI
// query) and is not safe for concurrent use. When one operation fans work
// across a worker pool, derive a Group from its Budget and hand each
// worker its own Budget via Group.Worker: the workers share the group's
// allowance through an atomic counter they flush into at poll boundaries,
// so a trip in one worker is observed by the others within pollStride
// charges.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrExhausted is the sentinel all budget failures wrap: callers test
// errors.Is(err, budget.ErrExhausted) to distinguish "the monitor shed
// this query" from a wrong verdict.
var ErrExhausted = errors.New("budget exhausted")

// ExhaustedError reports which limit tripped and how much work was done.
// It wraps ErrExhausted.
type ExhaustedError struct {
	// Reason is "visited", "deadline" or "canceled".
	Reason string
	// Visited is the work charged when the budget tripped.
	Visited int64
	// Limit is the visited-node cap (0 when the trip was time-based).
	Limit int64
	// Elapsed is the time since the budget was armed.
	Elapsed time.Duration
}

func (e *ExhaustedError) Error() string {
	switch e.Reason {
	case "visited":
		return fmt.Sprintf("budget exhausted: visited %d states (limit %d) after %s",
			e.Visited, e.Limit, e.Elapsed.Round(time.Microsecond))
	case "deadline":
		return fmt.Sprintf("budget exhausted: deadline passed after %s (%d states visited)",
			e.Elapsed.Round(time.Microsecond), e.Visited)
	default:
		return fmt.Sprintf("budget exhausted: %s after %s (%d states visited)",
			e.Reason, e.Elapsed.Round(time.Microsecond), e.Visited)
	}
}

// Unwrap makes errors.Is(err, ErrExhausted) hold for every ExhaustedError.
func (e *ExhaustedError) Unwrap() error { return ErrExhausted }

// pollStride is how many charges pass between wall-clock/context polls.
const pollStride = 1024

// Budget is a work allowance for one operation. Create one with New; the
// zero value and the nil pointer are both "unlimited".
type Budget struct {
	ctx      context.Context // nil when no cancellation source
	start    time.Time
	deadline time.Time // zero when no deadline
	limit    int64     // 0 when unlimited
	visited  int64
	poll     int64  // next visited value at which to check clock/ctx
	err      error  // sticky after the first trip
	group    *Group // non-nil for worker budgets minted by Group.Worker
	flushed  int64  // visited count already pushed to the group
}

// New arms a budget. ctx may be nil (no cancellation source); maxVisited
// <= 0 means no visited cap; timeout <= 0 means no deadline. New(nil, 0, 0)
// returns nil — a free budget is represented by the nil pointer so the hot
// paths skip it entirely.
func New(ctx context.Context, maxVisited int64, timeout time.Duration) *Budget {
	if ctx == nil && maxVisited <= 0 && timeout <= 0 {
		return nil
	}
	// poll = 1 makes the very first charge poll the clock and context, so
	// an already-canceled request or already-passed deadline trips before
	// any real work; later polls run every pollStride charges.
	b := &Budget{ctx: ctx, start: time.Now(), poll: 1}
	if maxVisited > 0 {
		b.limit = maxVisited
	}
	if timeout > 0 {
		b.deadline = b.start.Add(timeout)
	}
	return b
}

// Charge records n units of work (visited product states, BFS expansions)
// and reports whether the budget has tripped. The returned error is sticky:
// once non-nil, every later call returns it without further checks.
func (b *Budget) Charge(n int64) error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.visited += n
	if b.limit > 0 && b.visited > b.limit {
		b.err = &ExhaustedError{Reason: "visited", Visited: b.visited, Limit: b.limit, Elapsed: time.Since(b.start)}
		return b.err
	}
	if b.visited >= b.poll {
		b.poll = b.visited + pollStride
		return b.pollNow()
	}
	return nil
}

// pollNow checks the deadline and the context immediately.
func (b *Budget) pollNow() error {
	if b.group != nil {
		if err := b.group.poll(b.visited - b.flushed); err != nil {
			b.err = err
			return err
		}
		b.flushed = b.visited
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.err = &ExhaustedError{Reason: "deadline", Visited: b.visited, Elapsed: time.Since(b.start)}
		return b.err
	}
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			b.err = &ExhaustedError{Reason: "canceled", Visited: b.visited, Elapsed: time.Since(b.start)}
			return b.err
		default:
		}
	}
	return nil
}

// Err returns the sticky trip error, or nil while the budget holds. It also
// polls the clock and context so phase boundaries notice a passed deadline
// even when no work was charged since the last poll.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	return b.pollNow()
}

// Visited returns the work charged so far.
func (b *Budget) Visited() int64 {
	if b == nil {
		return 0
	}
	return b.visited
}

// Group is a concurrency-safe allowance shared by a pool of workers. It is
// derived from one Budget and inherits whatever remains of that budget's
// visited cap plus its deadline and context; each worker charges a private
// Budget (from Worker) and flushes into the group's atomic counter at poll
// boundaries, so the cross-worker synchronization cost is one atomic add
// per pollStride charges. The first trip is sticky and observed by every
// worker within pollStride charges.
//
// All methods are safe on a nil *Group, which means "unlimited".
type Group struct {
	ctx      context.Context
	start    time.Time
	deadline time.Time
	limit    int64
	visited  atomic.Int64
	err      atomic.Pointer[ExhaustedError]
}

// Group derives a shared allowance from b for fan-out across workers. A
// nil (unlimited) budget yields a nil (unlimited) group. The group's
// visited cap is what remains of b's cap at derivation time; after the
// workers join, charge Visited() back into b so the parent's accounting
// stays consistent.
func (b *Budget) Group() *Group {
	if b == nil {
		return nil
	}
	gr := &Group{ctx: b.ctx, start: b.start, deadline: b.deadline}
	if b.limit > 0 {
		rem := b.limit - b.visited
		if rem < 1 {
			rem = 1 // already over: the first flushed charge trips the group
		}
		gr.limit = rem
	}
	return gr
}

// Worker mints a private Budget bound to the group. Each worker goroutine
// must use its own; the returned budget has no local cap or deadline — all
// limits are enforced through the group at poll boundaries.
func (gr *Group) Worker() *Budget {
	if gr == nil {
		return nil
	}
	// poll = 1: the first charge flushes to the group immediately, so a
	// group already tripped by a sibling aborts this worker before real work.
	return &Budget{start: gr.start, poll: 1, group: gr}
}

// poll adds delta to the shared counter and checks every trip condition.
func (gr *Group) poll(delta int64) error {
	total := gr.visited.Add(delta)
	if e := gr.err.Load(); e != nil {
		return e
	}
	if gr.limit > 0 && total > gr.limit {
		return gr.trip(&ExhaustedError{Reason: "visited", Visited: total, Limit: gr.limit, Elapsed: time.Since(gr.start)})
	}
	if !gr.deadline.IsZero() && time.Now().After(gr.deadline) {
		return gr.trip(&ExhaustedError{Reason: "deadline", Visited: total, Elapsed: time.Since(gr.start)})
	}
	if gr.ctx != nil {
		select {
		case <-gr.ctx.Done():
			return gr.trip(&ExhaustedError{Reason: "canceled", Visited: total, Elapsed: time.Since(gr.start)})
		default:
		}
	}
	return nil
}

// trip records the first failure; concurrent trips race benignly and every
// caller gets the winning error.
func (gr *Group) trip(e *ExhaustedError) error {
	gr.err.CompareAndSwap(nil, e)
	return gr.err.Load()
}

// Err returns the group's sticky trip error, or nil while it holds. Like
// Budget.Err it polls the clock and context so a coordinator checking
// between phases notices a passed deadline even when workers are idle.
func (gr *Group) Err() error {
	if gr == nil {
		return nil
	}
	if e := gr.err.Load(); e != nil {
		return e
	}
	if err := gr.poll(0); err != nil {
		return err
	}
	return nil
}

// Flush pushes a worker budget's charges not yet reported to its group.
// Workers report at poll boundaries (every pollStride charges), so a
// worker that finishes between boundaries carries a tail the group has
// not counted; the pool must flush each worker as it joins or the
// group's total — and the parent budget it is folded back into —
// undercounts by up to pollStride-1 per worker, letting small sweeps
// dodge their cap entirely. No-op on nil and non-worker budgets.
func (b *Budget) Flush() {
	if b == nil || b.group == nil {
		return
	}
	if d := b.visited - b.flushed; d > 0 {
		b.flushed = b.visited
		if err := b.group.poll(d); err != nil && b.err == nil {
			b.err = err
		}
	}
}

// Visited returns the work flushed to the group so far. While workers
// run, up to pollStride-1 charges per worker may still be in flight;
// exact totals require each worker to Flush as it finishes (fan-out
// coordinators do).
func (gr *Group) Visited() int64 {
	if gr == nil {
		return 0
	}
	return gr.visited.Load()
}
