// Package budget bounds the work a decision procedure may perform.
//
// The paper's complexity results (Corollaries 5.6/5.7) make every decision
// procedure polynomial in |V|·|Q| and |E|·|Q| — but polynomial on a
// multi-million-edge protection graph is still long enough that a reference
// monitor must be able to cancel, bound and shed work. A Budget carries the
// three ways a computation can be cut short:
//
//   - a deadline (wall-clock),
//   - a cap on product states visited (the |V|·|Q| term, measured),
//   - a context whose cancellation aborts the work (client disconnect).
//
// Budgets are threaded through the closure loops of the analysis package
// and the product search of the relang package. The hot-path cost is one
// counter increment and one comparison per charge; the clock and the
// context are polled only every pollStride charges, so a budget never adds
// a syscall per visited state.
//
// All methods are safe on a nil *Budget, which means "unlimited": the
// uninstrumented entry points pass nil and pay a pointer test.
//
// A Budget is owned by one logical operation (one HTTP request, one CLI
// query) and is not safe for concurrent use.
package budget

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrExhausted is the sentinel all budget failures wrap: callers test
// errors.Is(err, budget.ErrExhausted) to distinguish "the monitor shed
// this query" from a wrong verdict.
var ErrExhausted = errors.New("budget exhausted")

// ExhaustedError reports which limit tripped and how much work was done.
// It wraps ErrExhausted.
type ExhaustedError struct {
	// Reason is "visited", "deadline" or "canceled".
	Reason string
	// Visited is the work charged when the budget tripped.
	Visited int64
	// Limit is the visited-node cap (0 when the trip was time-based).
	Limit int64
	// Elapsed is the time since the budget was armed.
	Elapsed time.Duration
}

func (e *ExhaustedError) Error() string {
	switch e.Reason {
	case "visited":
		return fmt.Sprintf("budget exhausted: visited %d states (limit %d) after %s",
			e.Visited, e.Limit, e.Elapsed.Round(time.Microsecond))
	case "deadline":
		return fmt.Sprintf("budget exhausted: deadline passed after %s (%d states visited)",
			e.Elapsed.Round(time.Microsecond), e.Visited)
	default:
		return fmt.Sprintf("budget exhausted: %s after %s (%d states visited)",
			e.Reason, e.Elapsed.Round(time.Microsecond), e.Visited)
	}
}

// Unwrap makes errors.Is(err, ErrExhausted) hold for every ExhaustedError.
func (e *ExhaustedError) Unwrap() error { return ErrExhausted }

// pollStride is how many charges pass between wall-clock/context polls.
const pollStride = 1024

// Budget is a work allowance for one operation. Create one with New; the
// zero value and the nil pointer are both "unlimited".
type Budget struct {
	ctx      context.Context // nil when no cancellation source
	start    time.Time
	deadline time.Time // zero when no deadline
	limit    int64     // 0 when unlimited
	visited  int64
	poll     int64 // next visited value at which to check clock/ctx
	err      error // sticky after the first trip
}

// New arms a budget. ctx may be nil (no cancellation source); maxVisited
// <= 0 means no visited cap; timeout <= 0 means no deadline. New(nil, 0, 0)
// returns nil — a free budget is represented by the nil pointer so the hot
// paths skip it entirely.
func New(ctx context.Context, maxVisited int64, timeout time.Duration) *Budget {
	if ctx == nil && maxVisited <= 0 && timeout <= 0 {
		return nil
	}
	// poll = 1 makes the very first charge poll the clock and context, so
	// an already-canceled request or already-passed deadline trips before
	// any real work; later polls run every pollStride charges.
	b := &Budget{ctx: ctx, start: time.Now(), poll: 1}
	if maxVisited > 0 {
		b.limit = maxVisited
	}
	if timeout > 0 {
		b.deadline = b.start.Add(timeout)
	}
	return b
}

// Charge records n units of work (visited product states, BFS expansions)
// and reports whether the budget has tripped. The returned error is sticky:
// once non-nil, every later call returns it without further checks.
func (b *Budget) Charge(n int64) error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.visited += n
	if b.limit > 0 && b.visited > b.limit {
		b.err = &ExhaustedError{Reason: "visited", Visited: b.visited, Limit: b.limit, Elapsed: time.Since(b.start)}
		return b.err
	}
	if b.visited >= b.poll {
		b.poll = b.visited + pollStride
		return b.pollNow()
	}
	return nil
}

// pollNow checks the deadline and the context immediately.
func (b *Budget) pollNow() error {
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.err = &ExhaustedError{Reason: "deadline", Visited: b.visited, Elapsed: time.Since(b.start)}
		return b.err
	}
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			b.err = &ExhaustedError{Reason: "canceled", Visited: b.visited, Elapsed: time.Since(b.start)}
			return b.err
		default:
		}
	}
	return nil
}

// Err returns the sticky trip error, or nil while the budget holds. It also
// polls the clock and context so phase boundaries notice a passed deadline
// even when no work was charged since the last poll.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	return b.pollNow()
}

// Visited returns the work charged so far.
func (b *Budget) Visited() int64 {
	if b == nil {
		return 0
	}
	return b.visited
}
