package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// scriptedProbe returns err[i] for the i-th probe of each peer,
// repeating the last entry once the script runs out.
type scriptedProbe struct {
	mu     sync.Mutex
	script map[string][]error
	calls  map[string]int
}

func (s *scriptedProbe) probe(_ context.Context, peer string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.calls == nil {
		s.calls = make(map[string]int)
	}
	i := s.calls[peer]
	s.calls[peer]++
	seq := s.script[peer]
	if len(seq) == 0 {
		return nil
	}
	if i >= len(seq) {
		i = len(seq) - 1
	}
	return seq[i]
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDownAfterThresholdAndHalfOpenRecovery(t *testing.T) {
	boom := errors.New("connection refused")
	sp := &scriptedProbe{script: map[string][]error{
		// ok, then 3 failures (threshold), then recovery.
		"http://a": {nil, boom, boom, boom, nil},
	}}
	var mu sync.Mutex
	var flips []string
	p := New([]string{"http://a"}, Options{
		Interval:      2 * time.Millisecond,
		FailThreshold: 3,
		Probe:         sp.probe,
		OnTransition: func(peer string, up bool) {
			mu.Lock()
			flips = append(flips, fmt.Sprintf("%s=%v", peer, up))
			mu.Unlock()
		},
	})
	if !p.Healthy("http://a") {
		t.Fatal("peer must start presumed up (fail open)")
	}
	p.Start()
	defer p.Stop()

	waitCond(t, "peer marked down", func() bool { return !p.Healthy("http://a") })
	waitCond(t, "half-open recovery", func() bool { return p.Healthy("http://a") })

	mu.Lock()
	got := append([]string(nil), flips...)
	mu.Unlock()
	if len(got) < 2 || got[0] != "http://a=false" || got[1] != "http://a=true" {
		t.Fatalf("transitions = %v, want [http://a=false http://a=true ...]", got)
	}
	st := p.Snapshot()["http://a"]
	if !st.Up || st.Transitions < 2 {
		t.Fatalf("snapshot = %+v, want up with >=2 transitions", st)
	}
}

func TestStaysUpBelowThreshold(t *testing.T) {
	boom := errors.New("timeout")
	sp := &scriptedProbe{script: map[string][]error{
		// Two failures (below threshold 3), then success — never down.
		"http://a": {boom, boom, nil},
	}}
	var flips int
	var mu sync.Mutex
	p := New([]string{"http://a"}, Options{
		Interval:      2 * time.Millisecond,
		FailThreshold: 3,
		Probe:         sp.probe,
		OnTransition: func(string, bool) {
			mu.Lock()
			flips++
			mu.Unlock()
		},
	})
	p.Start()
	defer p.Stop()
	waitCond(t, "probes complete", func() bool {
		return p.Snapshot()["http://a"].Probes >= 4
	})
	if !p.Healthy("http://a") {
		t.Fatal("peer went down below the failure threshold")
	}
	mu.Lock()
	defer mu.Unlock()
	if flips != 0 {
		t.Fatalf("got %d transitions, want 0", flips)
	}
}

func TestProbeTimeoutCountsAsFailure(t *testing.T) {
	p := New([]string{"http://slow"}, Options{
		Interval:      2 * time.Millisecond,
		Timeout:       5 * time.Millisecond,
		FailThreshold: 2,
		Probe: func(ctx context.Context, _ string) error {
			<-ctx.Done() // hang until the per-probe timeout fires
			return ctx.Err()
		},
	})
	p.Start()
	defer p.Stop()
	waitCond(t, "slow peer marked down", func() bool { return !p.Healthy("http://slow") })
	st := p.Snapshot()["http://slow"]
	if st.LastErr == "" {
		t.Fatal("want a recorded probe error")
	}
}

func TestUnknownPeerFailsOpen(t *testing.T) {
	p := New([]string{"http://a"}, Options{Probe: func(context.Context, string) error { return nil }})
	if !p.Healthy("http://nobody-watches-me") {
		t.Fatal("unknown peers must be presumed healthy")
	}
}

func TestStopBeforeStartIsSafe(t *testing.T) {
	p := New([]string{"http://a"}, Options{})
	p.Stop() // must not panic
}
