// Package health probes a fixed peer set and answers "is this peer
// believed alive right now?" — the signal the shard router needs to stop
// 307-ing namespace traffic into a corpse.
//
// Each peer gets its own probe loop: an HTTP GET of its health endpoint
// every Interval, bounded by a per-probe Timeout. A peer starts out
// presumed up (fail open: an unprobed fleet must not refuse traffic) and
// transitions down only after FailThreshold consecutive failures — one
// slow scrape is not an outage. A down peer keeps being probed at the
// same cadence (the half-open state); the first success flips it back up
// immediately, so recovery is one probe interval away, not a threshold's
// worth.
//
// The prober holds no references into the serving stack; tests inject a
// Probe function and drive transitions deterministically.
package health

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Options bounds a Prober. The zero value gets sensible defaults.
type Options struct {
	// Interval between probes of one peer; default 1s.
	Interval time.Duration
	// Timeout bounds one probe; default 500ms.
	Timeout time.Duration
	// FailThreshold is how many consecutive failures mark a peer down;
	// default 3.
	FailThreshold int
	// Path is the endpoint probed on each peer; default "/healthz".
	Path string
	// Probe overrides the HTTP probe entirely (tests, exotic transports).
	// It must respect ctx's deadline.
	Probe func(ctx context.Context, peer string) error
	// OnTransition, when set, is called on every up/down flip — the hook
	// logging and metrics hang off. Called from the probe goroutine.
	OnTransition func(peer string, up bool)
}

// Status is one peer's slice of a Snapshot.
type Status struct {
	Up bool `json:"up"`
	// ConsecutiveFails counts probe failures since the last success.
	ConsecutiveFails int `json:"consecutive_fails,omitempty"`
	// Transitions counts up/down flips since Start.
	Transitions uint64 `json:"transitions,omitempty"`
	// Probes counts completed probes.
	Probes uint64 `json:"probes"`
	// LastErr is the most recent probe failure, empty after a success.
	LastErr string `json:"last_err,omitempty"`
}

type peerState struct {
	mu          sync.Mutex
	up          bool
	fails       int
	transitions uint64
	probes      uint64
	lastErr     string
}

// Prober watches a fixed peer set. Build with New, then Start; Healthy
// and Snapshot are safe from any goroutine.
type Prober struct {
	peers  map[string]*peerState
	order  []string
	opts   Options
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a prober over the peer base URLs (duplicates collapsed).
// Every peer starts presumed up.
func New(peers []string, opts Options) *Prober {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 3
	}
	if opts.Path == "" {
		opts.Path = "/healthz"
	}
	if opts.Probe == nil {
		client := &http.Client{}
		opts.Probe = func(ctx context.Context, peer string) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+opts.Path, nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode < 200 || resp.StatusCode > 299 {
				return fmt.Errorf("probe %s%s: HTTP %d", peer, opts.Path, resp.StatusCode)
			}
			return nil
		}
	}
	p := &Prober{peers: make(map[string]*peerState), opts: opts}
	for _, peer := range peers {
		if _, ok := p.peers[peer]; ok {
			continue
		}
		p.peers[peer] = &peerState{up: true}
		p.order = append(p.order, peer)
	}
	return p
}

// Start launches one probe loop per peer (first probe immediate). Call
// once; pair with Stop.
func (p *Prober) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	for _, peer := range p.order {
		p.wg.Add(1)
		go p.loop(ctx, peer, p.peers[peer])
	}
}

// Stop halts every probe loop and waits for them to exit.
func (p *Prober) Stop() {
	if p.cancel == nil {
		return
	}
	p.cancel()
	p.wg.Wait()
}

func (p *Prober) loop(ctx context.Context, peer string, st *peerState) {
	defer p.wg.Done()
	t := time.NewTicker(p.opts.Interval)
	defer t.Stop()
	for {
		p.probeOnce(ctx, peer, st)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (p *Prober) probeOnce(ctx context.Context, peer string, st *peerState) {
	pctx, cancel := context.WithTimeout(ctx, p.opts.Timeout)
	err := p.opts.Probe(pctx, peer)
	cancel()
	if ctx.Err() != nil {
		return // shutting down; a canceled probe is not evidence
	}
	var flipped, nowUp bool
	st.mu.Lock()
	st.probes++
	if err == nil {
		st.fails = 0
		st.lastErr = ""
		if !st.up {
			// Half-open recovery: one success restores the peer.
			st.up = true
			st.transitions++
			flipped, nowUp = true, true
		}
	} else {
		st.fails++
		st.lastErr = err.Error()
		if st.up && st.fails >= p.opts.FailThreshold {
			st.up = false
			st.transitions++
			flipped, nowUp = true, false
		}
	}
	st.mu.Unlock()
	if flipped && p.opts.OnTransition != nil {
		p.opts.OnTransition(peer, nowUp)
	}
}

// Healthy reports whether peer is believed up. Unknown peers are healthy
// — fail open, the router must not refuse traffic it merely isn't
// watching.
func (p *Prober) Healthy(peer string) bool {
	st, ok := p.peers[peer]
	if !ok {
		return true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.up
}

// Snapshot copies every peer's status, for /metrics and logs.
func (p *Prober) Snapshot() map[string]Status {
	out := make(map[string]Status, len(p.peers))
	for peer, st := range p.peers {
		st.mu.Lock()
		out[peer] = Status{
			Up:               st.up,
			ConsecutiveFails: st.fails,
			Transitions:      st.transitions,
			Probes:           st.probes,
			LastErr:          st.lastErr,
		}
		st.mu.Unlock()
	}
	return out
}

// Peers returns the watched peer set in registration order.
func (p *Prober) Peers() []string { return append([]string(nil), p.order...) }
