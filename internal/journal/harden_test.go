package journal

// Write-path hardening suite (all names carry "Fault" so CI's
// `go test -run Fault -race` picks them up):
//
//   - a failed Write/Sync inside Append latches the journal instead of
//     letting the next Append put a duplicate-seq frame behind torn bytes,
//   - recovery distinguishes a torn tail (truncate, replay the prefix)
//     from mid-file corruption (fail loudly with ErrCorrupt),
//   - Append and WriteSnapshot may interleave from different goroutines
//     without ever stranding a record in the WAL with seq <= the
//     snapshot's LastSeq,
//   - Follow ships gapless WAL tails and reports when a snapshot
//     compacted the requested range away.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"takegrant/internal/fault"
)

// corruptFrame flips payload bytes of the n-th frame (0-based) in the
// WAL, leaving its length prefix intact — a CRC mismatch mid-file.
func corruptFrame(t *testing.T, dir string, n int) {
	t.Helper()
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len(walHeader)
	for i := 0; i < n; i++ {
		length := binary.LittleEndian.Uint32(data[off : off+4])
		off += 8 + int(length)
	}
	// Scribble inside the payload so the frame chain (length prefixes)
	// stays walkable but the CRC no longer matches.
	data[off+8] ^= 0xFF
	data[off+9] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFaultAppendFailureLatchesJournal(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, KindApply, map[string]string{"op": "one"})
	appendT(t, j, KindApply, map[string]string{"op": "two"})

	// The injected failure stands in for a short write AND does the
	// damage a real one would: only part of the frame lands in the WAL.
	walPath := filepath.Join(dir, "wal.log")
	fault.SetErr("journal:append-write", func() error {
		f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		f.Write([]byte{0x13, 0x37, 0xbe}) // half a length prefix
		return errors.New("injected: device gone")
	})
	if _, err := j.Append(KindApply, map[string]string{"op": "three"}); err == nil {
		t.Fatal("Append with failing write returned nil")
	}
	fault.Clear("journal:append-write")

	// The latch: LastSeq must not have advanced, and further appends are
	// refused with ErrLatched even though the hook is gone — without the
	// latch this next Append would write seq 3 again, AFTER the torn
	// bytes, and recovery would truncate the valid record away with them.
	if got := j.Stats().LastSeq; got != 2 {
		t.Fatalf("LastSeq after failed append = %d, want 2", got)
	}
	if !j.Stats().Latched {
		t.Error("Stats().Latched = false after failed append")
	}
	if _, err := j.Append(KindApply, map[string]string{"op": "four"}); !errors.Is(err, ErrLatched) {
		t.Fatalf("Append after failure = %v, want ErrLatched", err)
	}
	if err := j.WriteSnapshot(Meta{Revision: 9}, "subject a\n"); !errors.Is(err, ErrLatched) {
		t.Fatalf("WriteSnapshot after failure = %v, want ErrLatched", err)
	}
	j.Close()

	// Restart is the recovery path: the torn bytes are the tail, the two
	// acknowledged records replay, and the next seq continues from 2.
	j2, snap, recs := openT(t, dir)
	defer j2.Close()
	if snap != nil || len(recs) != 2 {
		t.Fatalf("recovery: snap=%v records=%d, want nil snap, 2 records", snap, len(recs))
	}
	if j2.Stats().TruncatedBytes == 0 {
		t.Error("recovery did not truncate the torn bytes")
	}
	if seq := appendT(t, j2, KindApply, map[string]string{"op": "three"}); seq != 3 {
		t.Fatalf("seq after recovery = %d, want 3", seq)
	}
}

func TestFaultMidFileCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	for i := 0; i < 4; i++ {
		appendT(t, j, KindApply, map[string]int{"i": i})
	}
	j.Close()
	corruptFrame(t, dir, 1) // frame 1 damaged; frames 2 and 3 intact beyond it

	if _, _, _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-file corruption = %v, want ErrCorrupt", err)
	}
	// Nothing was truncated: the evidence is preserved for the operator.
	info, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() <= int64(len(walHeader)) {
		t.Error("corrupt WAL was truncated; recovery must not destroy evidence")
	}
}

func TestFaultLastFrameDamageIsTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	for i := 0; i < 3; i++ {
		appendT(t, j, KindApply, map[string]int{"i": i})
	}
	j.Close()
	corruptFrame(t, dir, 2) // the LAST frame: no valid records beyond it

	// Same damage, different position: with nothing decodable after it,
	// this is indistinguishable from a crash mid-append — truncate and
	// replay the prefix.
	j2, _, recs := openT(t, dir)
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if j2.Stats().TruncatedBytes == 0 {
		t.Error("torn tail was not truncated")
	}
	if j2.Stats().LastSeq != 2 {
		t.Errorf("LastSeq = %d, want 2", j2.Stats().LastSeq)
	}
}

// TestFaultConcurrentAppendSnapshotContract hammers Append from one
// goroutine and WriteSnapshot from another (run under -race), then
// verifies the writer-side invariant directly on the files: the WAL
// never holds a record with seq <= the published snapshot's LastSeq, and
// snapshot.LastSeq plus the replayed WAL tail reconstruct the full
// acknowledged sequence with no gap and no duplicate.
func TestFaultConcurrentAppendSnapshotContract(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)

	const appends = 400
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			appendT(t, j, KindApply, map[string]int{"i": i})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			// Meta fields other than LastSeq are irrelevant to the invariant.
			if err := j.WriteSnapshot(Meta{Revision: uint64(i)}, fmt.Sprintf("snapshot %d\n", i)); err != nil {
				t.Errorf("WriteSnapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := j.Stats().LastSeq; got != appends {
		t.Fatalf("LastSeq = %d, want %d (lost or duplicated seqs)", got, appends)
	}
	j.Close()

	j2, snap, replay := openT(t, dir)
	defer j2.Close()
	if snap == nil {
		t.Fatal("no snapshot survived")
	}
	next := snap.Meta.LastSeq + 1
	for _, r := range replay {
		if r.Seq <= snap.Meta.LastSeq {
			t.Fatalf("WAL record seq %d <= snapshot LastSeq %d", r.Seq, snap.Meta.LastSeq)
		}
		if r.Seq != next {
			t.Fatalf("WAL tail has a gap: seq %d, want %d", r.Seq, next)
		}
		next++
	}
	if next != appends+1 {
		t.Fatalf("snapshot %d + %d replayed records ≠ %d acknowledged appends",
			snap.Meta.LastSeq, len(replay), appends)
	}
}

func TestFaultFollowShipsGaplessTail(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	defer j.Close()
	for i := 1; i <= 6; i++ {
		appendT(t, j, KindApply, map[string]int{"i": i})
	}

	recs, last, need, err := j.Follow(2)
	if err != nil {
		t.Fatal(err)
	}
	if need || last != 6 || len(recs) != 4 || recs[0].Seq != 3 || recs[3].Seq != 6 {
		t.Fatalf("Follow(2) = %d recs, last %d, need %v", len(recs), last, need)
	}
	// Caught up: an empty tail, no bootstrap.
	if recs, _, need, _ := j.Follow(6); len(recs) != 0 || need {
		t.Fatalf("Follow(6) = %d recs, need %v, want 0 false", len(recs), need)
	}

	// A snapshot resets the WAL: sequences at or below its LastSeq are
	// gone, so a follower still at seq 2 must be told to re-bootstrap...
	if err := j.WriteSnapshot(Meta{Revision: 1}, "state\n"); err != nil {
		t.Fatal(err)
	}
	if _, last, need, err := j.Follow(2); err != nil || !need || last != 6 {
		t.Fatalf("Follow(2) after snapshot: last %d, need %v, err %v; want 6 true nil", last, need, err)
	}
	// ...while one that bootstrapped at the snapshot tails cleanly.
	appendT(t, j, KindApply, map[string]int{"i": 7})
	recs, last, need, err = j.Follow(6)
	if err != nil || need || last != 7 || len(recs) != 1 || recs[0].Seq != 7 {
		t.Fatalf("Follow(6) after snapshot+append = %d recs, last %d, need %v, err %v", len(recs), last, need, err)
	}
}

// CRC collision paranoia: frameAfter must not mistake the torn tail's
// own garbage for a stranded record.
func TestFaultTornGarbageTailStaysTorn(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, KindApply, map[string]string{"op": "ok"})
	j.Close()

	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A frame-shaped prefix whose payload is valid JSON but fails the
	// CRC, followed by noise — everything after the last whole record
	// must read as one torn tail.
	payload := []byte(`{"seq":99,"kind":"apply","data":{}}`)
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload)^0xdeadbeef)
	copy(frame[8:], payload)
	frame = append(frame, 0x00, 0x7f, 0x00)
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, _, recs := openT(t, dir)
	defer j2.Close()
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("replayed %d records, want the 1 acknowledged one", len(recs))
	}
	if j2.Stats().TruncatedBytes != int64(len(frame)) {
		t.Errorf("TruncatedBytes = %d, want %d", j2.Stats().TruncatedBytes, len(frame))
	}
}
