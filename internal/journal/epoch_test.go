package journal

import (
	"strings"
	"testing"
)

// TestEpochStampedAndRecovered pins the fencing token's durability: a
// set epoch stamps every subsequent WAL frame and snapshot header, and
// reopening the directory recovers the highest epoch seen — from the
// snapshot meta, from replayed frames, or both.
func TestEpochStampedAndRecovered(t *testing.T) {
	dir := t.TempDir()
	j, snap, replay, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(replay) != 0 {
		t.Fatalf("fresh dir recovered state: snap=%v replay=%d", snap, len(replay))
	}
	if j.Epoch() != 0 {
		t.Fatalf("fresh journal epoch = %d, want 0", j.Epoch())
	}
	if err := j.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(KindGraph, "g1"); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(KindApply, "a1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: frames alone must carry the epoch forward.
	j2, snap, replay, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatal("unexpected snapshot")
	}
	if len(replay) != 2 {
		t.Fatalf("replayed %d records, want 2", len(replay))
	}
	for _, r := range replay {
		if r.Epoch != 3 {
			t.Fatalf("record seq %d epoch = %d, want 3", r.Seq, r.Epoch)
		}
	}
	if j2.Epoch() != 3 {
		t.Fatalf("recovered epoch = %d, want 3", j2.Epoch())
	}
	if j2.Stats().Epoch != 3 {
		t.Fatalf("stats epoch = %d, want 3", j2.Stats().Epoch)
	}

	// A snapshot persists the epoch in its header; after compaction the
	// WAL is empty and the snapshot alone must carry it.
	if err := j2.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := j2.WriteSnapshot(Meta{Revision: 7, Generation: 2}, "state"); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, snap, replay, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if snap == nil || len(replay) != 0 {
		t.Fatalf("want snapshot-only recovery, got snap=%v replay=%d", snap, len(replay))
	}
	if snap.Meta.Epoch != 5 {
		t.Fatalf("snapshot meta epoch = %d, want 5", snap.Meta.Epoch)
	}
	if j3.Epoch() != 5 {
		t.Fatalf("epoch after snapshot recovery = %d, want 5", j3.Epoch())
	}
}

// TestEpochMayNotRegress pins the monotonicity rule: fencing only works
// if an epoch can never move backwards on durable state.
func TestEpochMayNotRegress(t *testing.T) {
	j, _, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.SetEpoch(4); err != nil {
		t.Fatal(err)
	}
	err = j.SetEpoch(2)
	if err == nil {
		t.Fatal("SetEpoch accepted a regression 4 -> 2")
	}
	if !strings.Contains(err.Error(), "regress") {
		t.Fatalf("unexpected error: %v", err)
	}
	if j.Epoch() != 4 {
		t.Fatalf("epoch after refused regression = %d, want 4", j.Epoch())
	}
	// Setting the same epoch again is idempotent, not a regression.
	if err := j.SetEpoch(4); err != nil {
		t.Fatal(err)
	}
}

// TestAdvanceSeq pins the promotion-time cursor jump: a fresh journal
// advanced to seq N numbers its next append N+1, a snapshot written
// after the jump covers 1..N (so Follow(0) demands a bootstrap), and the
// cursor can never move backwards.
func TestAdvanceSeq(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AdvanceSeq(12); err != nil {
		t.Fatal(err)
	}
	if err := j.AdvanceSeq(5); err == nil {
		t.Fatal("AdvanceSeq accepted a regression 12 -> 5")
	}
	if err := j.WriteSnapshot(Meta{Revision: 9}, "state"); err != nil {
		t.Fatal(err)
	}
	seq, err := j.Append(KindApply, "a1")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 13 {
		t.Fatalf("append after AdvanceSeq(12) got seq %d, want 13", seq)
	}
	// A follower at cursor 0 must be told the snapshot absorbed 1..12.
	if _, _, snapshotNeeded, err := j.Follow(0); err != nil || !snapshotNeeded {
		t.Fatalf("Follow(0) = snapshotNeeded=%v err=%v, want bootstrap", snapshotNeeded, err)
	}
	// A follower already at 12 tails gaplessly.
	recs, _, snapshotNeeded, err := j.Follow(12)
	if err != nil || snapshotNeeded || len(recs) != 1 || recs[0].Seq != 13 {
		t.Fatalf("Follow(12) = %v %v %v", recs, snapshotNeeded, err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The jumped cursor survives recovery via the snapshot's LastSeq.
	j2, snap, replay, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if snap == nil || snap.Meta.LastSeq != 12 {
		t.Fatalf("recovered snapshot = %+v, want LastSeq 12", snap)
	}
	if len(replay) != 1 || replay[0].Seq != 13 {
		t.Fatalf("recovered replay = %+v, want one record at seq 13", replay)
	}
	if j2.Stats().LastSeq != 13 {
		t.Fatalf("recovered LastSeq = %d, want 13", j2.Stats().LastSeq)
	}
}
