package journal

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) (*Journal, *Snapshot, []Record) {
	t.Helper()
	j, snap, recs, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j, snap, recs
}

func appendT(t *testing.T, j *Journal, kind string, data any) uint64 {
	t.Helper()
	seq, err := j.Append(kind, data)
	if err != nil {
		t.Fatalf("Append(%s): %v", kind, err)
	}
	return seq
}

func TestEmptyDirStartsFresh(t *testing.T) {
	dir := t.TempDir()
	j, snap, recs := openT(t, dir)
	defer j.Close()
	if snap != nil {
		t.Fatalf("expected no snapshot, got %+v", snap)
	}
	if len(recs) != 0 {
		t.Fatalf("expected no records, got %d", len(recs))
	}
}

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, KindGraph, "subject a\n")
	appendT(t, j, KindApply, map[string]string{"rule": "take"})
	appendT(t, j, KindApply, map[string]string{"rule": "grant"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, snap, recs := openT(t, dir)
	defer j2.Close()
	if snap != nil {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	wantKinds := []string{KindGraph, KindApply, KindApply}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if r.Kind != wantKinds[i] {
			t.Errorf("record %d: kind %q, want %q", i, r.Kind, wantKinds[i])
		}
	}
	var text string
	if err := json.Unmarshal(recs[0].Data, &text); err != nil || text != "subject a\n" {
		t.Errorf("graph record data = %s (%v)", recs[0].Data, err)
	}
	if j2.Stats().LastSeq != 3 {
		t.Errorf("LastSeq = %d, want 3", j2.Stats().LastSeq)
	}
}

func TestSeqContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, KindApply, 1)
	appendT(t, j, KindApply, 2)
	j.Close()

	j2, _, _ := openT(t, dir)
	if seq := appendT(t, j2, KindApply, 3); seq != 3 {
		t.Fatalf("seq after reopen = %d, want 3", seq)
	}
	j2.Close()
}

func TestTornTailIsTruncated(t *testing.T) {
	for name, mangle := range map[string]func(wal []byte) []byte{
		// A crash mid-append leaves a partial frame: keep the whole file
		// then add half a header.
		"short-frame-header": func(wal []byte) []byte {
			return append(wal, 0x10, 0x00)
		},
		// A full header promising more payload than exists.
		"short-payload": func(wal []byte) []byte {
			extra := make([]byte, 8)
			binary.LittleEndian.PutUint32(extra[0:4], 100)
			binary.LittleEndian.PutUint32(extra[4:8], 0xdeadbeef)
			return append(append(wal, extra...), []byte("partial")...)
		},
		// A bit flip inside the last record's payload.
		"crc-mismatch": func(wal []byte) []byte {
			out := append([]byte(nil), wal...)
			out[len(out)-3] ^= 0x40
			return out
		},
		// An absurd length prefix.
		"bad-length": func(wal []byte) []byte {
			extra := make([]byte, 8)
			binary.LittleEndian.PutUint32(extra[0:4], 0xffffffff)
			return append(wal, extra...)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			j, _, _ := openT(t, dir)
			appendT(t, j, KindApply, "keep-1")
			appendT(t, j, KindApply, "keep-2")
			j.Close()

			walPath := filepath.Join(dir, "wal.log")
			wal, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			mangled := mangle(wal)
			if err := os.WriteFile(walPath, mangled, 0o644); err != nil {
				t.Fatal(err)
			}

			j2, _, recs := openT(t, dir)
			defer j2.Close()
			// crc-mismatch corrupts record 2 itself; every other case only
			// adds a torn tail after both records.
			wantRecs := 2
			if name == "crc-mismatch" {
				wantRecs = 1
			}
			if len(recs) != wantRecs {
				t.Fatalf("recovered %d records, want %d", len(recs), wantRecs)
			}
			if j2.Stats().TruncatedBytes <= 0 {
				t.Errorf("TruncatedBytes = %d, want > 0", j2.Stats().TruncatedBytes)
			}
			// The torn tail must be gone from disk: appending now and
			// reopening must yield wantRecs+1 clean records.
			appendT(t, j2, KindApply, "after-repair")
			j2.Close()
			j3, _, recs3 := openT(t, dir)
			defer j3.Close()
			if len(recs3) != wantRecs+1 {
				t.Fatalf("after repair: %d records, want %d", len(recs3), wantRecs+1)
			}
		})
	}
}

func TestSnapshotResetsWALAndSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, KindGraph, "subject a\n")
	appendT(t, j, KindApply, "r1")
	if err := j.WriteSnapshot(Meta{Revision: 7, Generation: 2}, "subject a\nsubject b\n"); err != nil {
		t.Fatal(err)
	}
	appendT(t, j, KindApply, "r2") // post-snapshot: must replay
	j.Close()

	j2, snap, recs := openT(t, dir)
	defer j2.Close()
	if snap == nil {
		t.Fatal("no snapshot recovered")
	}
	if snap.Meta.Revision != 7 || snap.Meta.Generation != 2 || snap.Meta.LastSeq != 2 {
		t.Errorf("meta = %+v, want {7 2 2}", snap.Meta)
	}
	if snap.Text != "subject a\nsubject b\n" {
		t.Errorf("snapshot text = %q", snap.Text)
	}
	if len(recs) != 1 {
		t.Fatalf("replay %d records, want 1 (post-snapshot only)", len(recs))
	}
	if recs[0].Seq != 3 {
		t.Errorf("replayed seq %d, want 3", recs[0].Seq)
	}
}

func TestCrashBetweenSnapshotAndWALReset(t *testing.T) {
	// Simulate the crash window: snapshot published but WAL still holds
	// the covered records. Recovery must not replay them twice.
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, KindApply, "covered-1")
	appendT(t, j, KindApply, "covered-2")
	// Write the snapshot by hand (as WriteSnapshot would, minus the reset).
	head, _ := json.Marshal(Meta{Revision: 2, Generation: 1, LastSeq: 2})
	if err := os.WriteFile(filepath.Join(dir, "snapshot.tg"),
		append(append(head, '\n'), []byte("subject a\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	appendT(t, j, KindApply, "fresh-3")
	j.Close()

	j2, snap, recs := openT(t, dir)
	defer j2.Close()
	if snap == nil || snap.Meta.LastSeq != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("replay = %+v, want only seq 3", recs)
	}
	// New appends continue from the true tail.
	if seq := appendT(t, j2, KindApply, "next"); seq != 4 {
		t.Errorf("next seq = %d, want 4", seq)
	}
}

func TestUnreadableSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.tg"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a garbage snapshot; starting empty would discard state")
	}
}

func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, KindApply, "a")
	appendT(t, j, KindApply, "b")
	s := j.Stats()
	if s.Appended != 2 || s.WalRecords != 2 || s.LastSeq != 2 {
		t.Errorf("stats = %+v", s)
	}
	if err := j.WriteSnapshot(Meta{Revision: 1}, "subject a\n"); err != nil {
		t.Fatal(err)
	}
	s = j.Stats()
	if s.Snapshots != 1 || s.WalRecords != 0 {
		t.Errorf("post-snapshot stats = %+v", s)
	}
	j.Close()
}
