// Package journal makes the reference monitor's protection state survive
// crashes: an append-only write-ahead log of accepted mutations plus
// periodic snapshots, both under one data directory.
//
// # Files
//
//	DIR/wal.log      the WAL: a fixed header then CRC-framed records
//	DIR/snapshot.tg  latest snapshot: one JSON meta line, then .tg text
//
// # Record framing
//
// Every WAL record is framed as
//
//	uint32 LE  payload length
//	uint32 LE  CRC-32 (IEEE) of the payload
//	payload    JSON {"seq":N,"kind":"apply"|"graph","data":...}
//
// and fsync'd before Append returns, so an acknowledged mutation is on
// disk before the client sees 200. Sequence numbers increase by one per
// record and never reset — they are what makes snapshotting safe (below)
// and what lets a follower tail the log (Follow).
//
// # Recovery rules
//
// Open scans the WAL front to back. A frame that cannot be read whole —
// short header, short payload, impossible length, CRC mismatch, or
// non-JSON payload — is classified by what follows it:
//
//   - Nothing but the bad bytes to end of file: the torn tail left by a
//     crash mid-append. The file is truncated back to the last whole
//     record; everything before the tear is returned for replay. The
//     torn record was never acknowledged, so dropping it is correct.
//   - At least one whole, CRC-valid record after the bad region:
//     mid-file corruption. Records that WERE acknowledged as durable sit
//     beyond the damage; silently truncating would discard them, and
//     silently skipping the bad frame would replay a sequence with a
//     hole. Open fails loudly with ErrCorrupt instead — this needs an
//     operator (restore the file, or accept the snapshot alone), not a
//     heuristic.
//
// A missing WAL or a missing snapshot is not an error; an unreadable
// snapshot is (silently starting empty would discard the graph).
//
// # Failure latch
//
// A failed Write or Sync inside Append leaves the WAL in an unknown
// state: part of the frame may be on disk. The journal latches into a
// failed state (ErrLatched): the failed record's sequence number is NOT
// consumed, and every later Append and WriteSnapshot is refused with the
// original error — without the latch, the next Append would write a
// duplicate-sequence frame after the torn bytes, turning one bad write
// into a corrupt log. Recovery from a latched journal is a restart: Open
// truncates the tear like any other crash.
//
// # Snapshot cadence
//
// The serving layer snapshots every snapEvery accepted mutations and once
// on graceful shutdown. A snapshot is written to a temp file, fsync'd and
// renamed over snapshot.tg; only then is the WAL reset. The snapshot meta
// records the sequence number of the last record it covers, and Open
// skips WAL records at or below it — so a crash between the rename and
// the WAL reset replays nothing twice.
//
// # Locking contract
//
// All methods are safe for concurrent use: one internal mutex serializes
// Append, WriteSnapshot, Follow, Stats and Close. The ordering invariant
// this enforces on the writer side: WriteSnapshot captures meta.LastSeq
// and resets the WAL under the same critical section that assigns
// sequence numbers, so a record can never land in the WAL with
// Seq <= the published snapshot's LastSeq — an interleaved Append either
// completes before the snapshot (and is covered by it) or starts after
// the reset (and lands, with a higher Seq, in the fresh WAL). Without
// the mutex an Append between the meta capture and the reset would fsync
// a frame and then have it erased, losing an acknowledged record.
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"takegrant/internal/fault"
)

// walHeader begins every WAL file; a mismatch means the file is not ours.
const walHeader = "TGWAL1\n"

// maxRecordBytes bounds one record's payload; a longer length prefix is
// treated as tail corruption (no legitimate record approaches it: the
// largest payload is a full graph document, itself capped at 1 MB by the
// service).
const maxRecordBytes = 8 << 20

// ErrCorrupt marks mid-file WAL corruption: a damaged frame with whole,
// CRC-valid records beyond it. Recovery refuses to guess and fails.
var ErrCorrupt = errors.New("journal: WAL corrupt mid-file")

// ErrLatched marks a journal frozen by an earlier write failure; every
// operation after the first failed Append is refused with this error.
var ErrLatched = errors.New("journal: latched by earlier write failure")

// Record kinds. KindGraph carries a whole .tg document (a PUT /graph);
// KindGraphBin carries a whole .tgb binary document, base64-encoded (a
// binary PUT /graph — raw bytes can't ride in a JSON string, invalid
// UTF-8 would be mangled to U+FFFD on decode); KindApply carries one
// accepted rule application (a POST /apply body).
const (
	KindGraph    = "graph"
	KindGraphBin = "graphb"
	KindApply    = "apply"
)

// Record is one durable mutation.
type Record struct {
	// Seq numbers records 1,2,3,… across the journal's whole life,
	// surviving snapshots and WAL resets.
	Seq uint64 `json:"seq"`
	// Kind is KindGraph or KindApply.
	Kind string `json:"kind"`
	// Epoch is the leader epoch under which the record was accepted; 0 in
	// frames written before epochs existed. A frame's epoch is what lets a
	// follower refuse a resurrected old leader's stale writes.
	Epoch uint64 `json:"epoch,omitempty"`
	// Data is the mutation body: the .tg text (JSON string) for KindGraph,
	// the apply-request object for KindApply.
	Data json.RawMessage `json:"data"`
}

// Meta is the snapshot header line.
type Meta struct {
	// Revision is the graph's mutation counter at snapshot time.
	Revision uint64 `json:"revision"`
	// Generation counts graph installations (PUT /graph) at snapshot time.
	Generation uint64 `json:"generation"`
	// LastSeq is the sequence number of the last WAL record the snapshot
	// covers; recovery skips records with Seq <= LastSeq.
	LastSeq uint64 `json:"last_seq"`
	// Epoch is the leader epoch at snapshot time; 0 in snapshots written
	// before epochs existed. WriteSnapshot fills it in from the journal's
	// own counter, so a promotion's epoch bump survives restarts even when
	// the WAL is empty.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Snapshot is a decoded snapshot file.
type Snapshot struct {
	Meta Meta
	// Text is the canonical .tg document.
	Text string
}

// Stats reports the journal's counters for /stats and /metrics.
type Stats struct {
	// Appended counts records fsync'd since Open.
	Appended uint64 `json:"appended"`
	// Snapshots counts snapshots written since Open.
	Snapshots uint64 `json:"snapshots"`
	// Recovered counts WAL records replayed by Open.
	Recovered uint64 `json:"recovered"`
	// TruncatedBytes is the corrupt tail length Open cut off, 0 when the
	// WAL was clean.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// WalRecords counts records in the current WAL (since the last
	// snapshot); drives snapshot cadence.
	WalRecords uint64 `json:"wal_records"`
	// LastSeq is the newest sequence number on disk.
	LastSeq uint64 `json:"last_seq"`
	// Epoch is the leader epoch new appends are stamped with.
	Epoch uint64 `json:"epoch,omitempty"`
	// Latched is true once a write failure froze the journal.
	Latched bool `json:"latched,omitempty"`
}

// Journal is an open data directory. Safe for concurrent use — see the
// locking contract in the package comment.
type Journal struct {
	dir string
	// mu serializes every method. It is what upholds the snapshot/append
	// ordering invariant: sequence assignment, the frame write+fsync, the
	// snapshot's LastSeq capture and the WAL reset all happen under it.
	mu    sync.Mutex
	wal   *os.File
	stats Stats
	// epoch stamps every appended record and written snapshot; recovered
	// by Open from the snapshot meta and record frames, raised by SetEpoch
	// at promotion, never lowered.
	epoch uint64
	// failed latches the journal after a write/fsync error; see ErrLatched.
	failed error
}

// Open loads the data directory (creating it if needed), returning the
// journal ready for appends, the latest snapshot (nil if none), and the
// WAL records to replay on top of it — torn tails already truncated,
// snapshot-covered records already skipped. Mid-file corruption (damaged
// bytes with whole records beyond them) fails with ErrCorrupt.
func Open(dir string) (*Journal, *Snapshot, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("journal: create dir: %w", err)
	}
	snap, err := readSnapshot(filepath.Join(dir, "snapshot.tg"))
	if err != nil {
		return nil, nil, nil, err
	}
	j := &Journal{dir: dir}
	if snap != nil {
		j.stats.LastSeq = snap.Meta.LastSeq
		j.epoch = snap.Meta.Epoch
	}
	recs, err := j.openWAL()
	if err != nil {
		return nil, nil, nil, err
	}
	// Skip records the snapshot already covers (a crash between snapshot
	// rename and WAL reset leaves them behind).
	var replay []Record
	minSeq := uint64(0)
	if snap != nil {
		minSeq = snap.Meta.LastSeq
	}
	for _, r := range recs {
		if r.Epoch > j.epoch {
			j.epoch = r.Epoch
		}
		if r.Seq > minSeq {
			replay = append(replay, r)
			if r.Seq > j.stats.LastSeq {
				j.stats.LastSeq = r.Seq
			}
		}
	}
	j.stats.Epoch = j.epoch
	j.stats.Recovered = uint64(len(replay))
	j.stats.WalRecords = uint64(len(recs))
	return j, snap, replay, nil
}

// openWAL scans (and truncates) the WAL, leaving j.wal positioned for
// appends at the end of the last whole record.
func (j *Journal) openWAL() ([]Record, error) {
	path := filepath.Join(j.dir, "wal.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: stat wal: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.WriteString(walHeader); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: init wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: sync wal header: %w", err)
		}
		j.wal = f
		return nil, nil
	}
	recs, goodEnd, err := scanWAL(f, info.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	if goodEnd < info.Size() {
		j.stats.TruncatedBytes = info.Size() - goodEnd
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek wal end: %w", err)
	}
	j.wal = f
	return recs, nil
}

// scanWAL reads whole records front to back, returning them and the file
// offset where the last whole record ends. A malformed frame with nothing
// decodable after it is the torn tail: scanning stops there and the
// offset excludes it. A malformed frame FOLLOWED by a whole, CRC-valid
// record is mid-file corruption and fails with ErrCorrupt — the records
// beyond the damage were acknowledged as durable, and neither truncating
// them away nor replaying around the hole is sound.
func scanWAL(f *os.File, size int64) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: seek wal: %w", err)
	}
	br := bufio.NewReader(f)
	head := make([]byte, len(walHeader))
	if _, err := io.ReadFull(br, head); err != nil {
		// Shorter than the header: treat the whole file as torn.
		return nil, 0, fmt.Errorf("journal: wal shorter than header")
	}
	if string(head) != walHeader {
		return nil, 0, fmt.Errorf("journal: wal header mismatch (not a TGWAL1 file)")
	}
	var recs []Record
	off := int64(len(walHeader))
	frame := make([]byte, 8)
	for off < size {
		if _, err := io.ReadFull(br, frame); err != nil {
			break // short header: nothing whole can follow
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxRecordBytes || off+8+int64(length) > size {
			break // impossible length
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // short payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or partial overwrite
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // CRC-valid garbage still cannot be replayed
		}
		recs = append(recs, rec)
		off += 8 + int64(length)
	}
	if off < size && frameAfter(f, off, size) {
		return nil, 0, fmt.Errorf("%w: damaged frame at offset %d with whole records beyond it (%d bytes of WAL remain); refusing to discard durable records — restore the file or remove it to recover from the snapshot alone",
			ErrCorrupt, off, size-off)
	}
	return recs, off, nil
}

// frameAfter reports whether any whole, CRC-valid, decodable frame begins
// strictly after start. It slides byte-by-byte over the remaining bytes:
// a CRC-32 match over a plausible length prefix plus a JSON-decodable
// record payload does not happen by accident, so one hit distinguishes
// "durable records stranded behind damage" from "torn tail of garbage".
func frameAfter(f *os.File, start, size int64) bool {
	tail := make([]byte, size-start)
	if _, err := f.ReadAt(tail, start); err != nil {
		return false // unreadable tail: treat as torn
	}
	// p = 0 is the damaged frame itself; candidates start one byte in.
	for p := 1; p+8 <= len(tail); p++ {
		length := binary.LittleEndian.Uint32(tail[p : p+4])
		if length == 0 || length > maxRecordBytes || p+8+int(length) > len(tail) {
			continue
		}
		payload := tail[p+8 : p+8+int(length)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail[p+4:p+8]) {
			continue
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Seq == 0 || rec.Kind == "" {
			continue
		}
		return true
	}
	return false
}

// latch freezes the journal after a failed write, preserving the first
// error; the failed record's sequence number is not consumed. Callers
// hold j.mu.
func (j *Journal) latch(err error) error {
	if j.failed == nil {
		j.failed = err
		j.stats.Latched = true
	}
	return err
}

// refuseLatched is the guard every mutating method runs first. Callers
// hold j.mu.
func (j *Journal) refuseLatched() error {
	if j.failed == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrLatched, j.failed)
}

// Append frames, writes and fsyncs one record, assigning it the next
// sequence number. The record is durable when Append returns nil. A
// write or fsync failure latches the journal (see ErrLatched): the
// sequence number is not advanced — a torn frame may remain on disk, and
// appending anything after it would put a duplicate-sequence record
// behind corrupt bytes, so all further appends are refused until the
// journal is reopened (Open truncates the tear).
func (j *Journal) Append(kind string, data any) (uint64, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return 0, fmt.Errorf("journal: encode record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.refuseLatched(); err != nil {
		return 0, err
	}
	rec := Record{Seq: j.stats.LastSeq + 1, Kind: kind, Epoch: j.epoch, Data: raw}
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("journal: encode frame: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds frame limit", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if err := fault.InjectErr("journal:append-write"); err != nil {
		return 0, j.latch(fmt.Errorf("journal: append: %w", err))
	}
	if _, err := j.wal.Write(frame); err != nil {
		return 0, j.latch(fmt.Errorf("journal: append: %w", err))
	}
	if err := fault.InjectErr("journal:append-sync"); err != nil {
		return 0, j.latch(fmt.Errorf("journal: fsync: %w", err))
	}
	if err := j.wal.Sync(); err != nil {
		return 0, j.latch(fmt.Errorf("journal: fsync: %w", err))
	}
	j.stats.LastSeq = rec.Seq
	j.stats.Appended++
	j.stats.WalRecords++
	return rec.Seq, nil
}

// WriteSnapshot persists the state as the new snapshot (temp file, fsync,
// atomic rename) and resets the WAL. meta.LastSeq is filled in from the
// journal's own counter; callers supply Revision and Generation. The
// LastSeq capture and the WAL reset happen under the same mutex that
// assigns append sequence numbers, so no record can land in the WAL with
// Seq <= the snapshot's LastSeq (the writer-side half of the seq-skip
// recovery rule). text must describe the state as of the caller's last
// Append — the serving layer guarantees that by holding its write lock
// across the mutation, the Append and the snapshot.
func (j *Journal) WriteSnapshot(meta Meta, text string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.refuseLatched(); err != nil {
		return err
	}
	meta.LastSeq = j.stats.LastSeq
	meta.Epoch = j.epoch
	head, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("journal: encode snapshot meta: %w", err)
	}
	path := filepath.Join(j.dir, "snapshot.tg")
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create snapshot: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%s\n%s", head, text); err != nil {
		f.Close()
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("journal: publish snapshot: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	// The snapshot is durable; the WAL's records are now redundant (and
	// recovery would skip them by seq anyway). Reset it. A failed reset
	// latches: the WAL's write offset is unknown, so appending into it
	// could interleave frames.
	if err := j.resetWAL(); err != nil {
		return j.latch(err)
	}
	j.stats.Snapshots++
	j.stats.WalRecords = 0
	return nil
}

// resetWAL truncates the WAL back to its header. Callers hold j.mu.
func (j *Journal) resetWAL() error {
	if err := j.wal.Truncate(int64(len(walHeader))); err != nil {
		return fmt.Errorf("journal: reset wal: %w", err)
	}
	if _, err := j.wal.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("journal: seek wal: %w", err)
	}
	if err := j.wal.Sync(); err != nil {
		return fmt.Errorf("journal: sync wal reset: %w", err)
	}
	return nil
}

// Follow returns the durable records with sequence numbers strictly
// greater than after, for WAL shipping to a read replica: the follower
// replays them through the same apply path the leader took and polls
// again from the last sequence it applied.
//
// lastSeq is the newest durable sequence number — the follower is caught
// up when its applied sequence reaches it. snapshotNeeded reports that
// the WAL no longer reaches back to after+1 (a snapshot compacted those
// records away); the follower must re-bootstrap from the leader's
// current state and resume following from its LastSeq.
//
// Follow reads the WAL through its own file handle under the journal
// mutex, so it observes only whole fsync'd frames and never disturbs the
// append offset. A latched journal can still be followed: everything
// before the tear is durable truth.
func (j *Journal) Follow(after uint64) (recs []Record, lastSeq uint64, snapshotNeeded bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lastSeq = j.stats.LastSeq
	if after >= lastSeq {
		return nil, lastSeq, false, nil
	}
	f, err := os.Open(filepath.Join(j.dir, "wal.log"))
	if err != nil {
		return nil, lastSeq, false, fmt.Errorf("journal: follow: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, lastSeq, false, fmt.Errorf("journal: follow stat: %w", err)
	}
	all, _, err := scanWAL(f, info.Size())
	if err != nil {
		return nil, lastSeq, false, err
	}
	// The WAL must contain after+1 for the tail to be gapless; otherwise a
	// snapshot absorbed it and the follower needs a bootstrap.
	if len(all) == 0 || all[0].Seq > after+1 {
		return nil, lastSeq, true, nil
	}
	for _, r := range all {
		if r.Seq > after {
			recs = append(recs, r)
		}
	}
	return recs, lastSeq, false, nil
}

// Stats returns a copy of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Epoch returns the leader epoch new appends are stamped with.
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// SetEpoch raises the leader epoch stamped into subsequent records and
// snapshots — the durable half of promotion fencing. An epoch is
// monotonic for the life of the data directory: lowering it would let a
// resurrected old leader re-stamp fresh frames as current, so a
// regression is refused. The new epoch only reaches disk with the next
// Append or WriteSnapshot; promotion writes a snapshot immediately after
// SetEpoch so the bump survives a crash.
func (j *Journal) SetEpoch(e uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if e < j.epoch {
		return fmt.Errorf("journal: leader epoch may not regress (%d < %d)", e, j.epoch)
	}
	j.epoch = e
	j.stats.Epoch = e
	return nil
}

// AdvanceSeq moves the WAL cursor forward without writing records, so
// the next Append is stamped seq+1. Promotion uses it to make a fresh
// journal continue the old fleet's sequence numbering: the promoted
// snapshot then covers seqs 1..seq, and a follower starting from 0 (or
// any cursor inside the absorbed range) is correctly told it needs a
// bootstrap rather than being handed a WAL tail that silently assumes
// empty base state. The cursor may not move backwards — that would let
// two records share a seq.
func (j *Journal) AdvanceSeq(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < j.stats.LastSeq {
		return fmt.Errorf("journal: seq cursor may not regress (%d < %d)", seq, j.stats.LastSeq)
	}
	j.stats.LastSeq = seq
	return nil
}

// Close releases the WAL file. It does not snapshot; callers wanting a
// final snapshot write one first.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil
	}
	err := j.wal.Close()
	j.wal = nil
	return err
}

// readSnapshot decodes a snapshot file; a missing file returns (nil, nil).
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read snapshot: %w", err)
	}
	nl := -1
	for i, c := range data {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("journal: snapshot missing meta line")
	}
	var meta Meta
	if err := json.Unmarshal(data[:nl], &meta); err != nil {
		return nil, fmt.Errorf("journal: decode snapshot meta: %w", err)
	}
	return &Snapshot{Meta: meta, Text: string(data[nl+1:])}, nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}
