package hru

import (
	"fmt"
	"sort"

	"takegrant/internal/rights"
)

// Condition is one conjunct of a command's guard: right ∈ (S, O) where S
// and O name formal parameters.
type Condition struct {
	Right rights.Right
	S, O  int // parameter indexes
}

// OpKind is a primitive operation kind.
type OpKind uint8

const (
	// OpEnter enters rights into (S, O).
	OpEnter OpKind = iota
	// OpDelete deletes rights from (S, O).
	OpDelete
	// OpCreateSubject creates the subject named by parameter S.
	OpCreateSubject
	// OpCreateObject creates the object named by parameter S.
	OpCreateObject
	// OpDestroy destroys the entity named by parameter S (both its row
	// and column vanish).
	OpDestroy
)

// Primitive is one primitive operation of a command body.
type Primitive struct {
	Kind   OpKind
	Rights rights.Set
	S, O   int // parameter indexes (O unused for create/destroy)
}

// Command is an HRU command: if every condition holds of the actual
// parameters, execute the primitive operations in order.
type Command struct {
	Name       string
	NumParams  int
	Conditions []Condition
	Body       []Primitive
}

// Run executes the command on the matrix with the given actual parameters.
func (c *Command) Run(m *Matrix, args ...string) error {
	if len(args) != c.NumParams {
		return fmt.Errorf("hru: %s expects %d parameters, got %d", c.Name, c.NumParams, len(args))
	}
	// HRU commands relate distinct entities, matching the graph rules.
	for i := range args {
		for j := i + 1; j < len(args); j++ {
			if args[i] == args[j] {
				return fmt.Errorf("hru: %s parameters must be distinct", c.Name)
			}
		}
	}
	for _, cond := range c.Conditions {
		s, o := args[cond.S], args[cond.O]
		if !m.Get(s, o).Has(cond.Right) {
			return fmt.Errorf("hru: %s condition failed: %s ∉ (%s,%s)",
				c.Name, m.u.Name(cond.Right), s, o)
		}
	}
	for _, op := range c.Body {
		var err error
		switch op.Kind {
		case OpEnter:
			err = m.Enter(args[op.S], args[op.O], op.Rights)
		case OpDelete:
			err = m.Delete(args[op.S], args[op.O], op.Rights)
		case OpCreateSubject:
			err = m.AddSubject(args[op.S])
		case OpCreateObject:
			err = m.AddObject(args[op.S])
		case OpDestroy:
			name := args[op.S]
			if !m.objects[name] {
				err = fmt.Errorf("hru: destroy of unknown %q", name)
				break
			}
			delete(m.subjects, name)
			delete(m.objects, name)
			delete(m.cells, name)
			for _, row := range m.cells {
				delete(row, name)
			}
		default:
			err = fmt.Errorf("hru: unknown primitive %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("hru: %s: %w", c.Name, err)
		}
	}
	return nil
}

// TakeGrantCommands returns the de jure rules of the Take-Grant model as
// HRU commands over parameters (x, y, z):
//
//	take(x,y,z):  if t ∈ (x,y) and α ∈ (y,z) then enter α into (x,z)
//	grant(x,y,z): if g ∈ (x,y) and α ∈ (x,z) then enter α into (y,z)
//
// One command per single right α keeps the command set finite (rights move
// one at a time, which composes to any subset). Create/remove are also
// included; create mints an object with the full label, matching the
// explorer's canonical creates.
func TakeGrantCommands(u *rights.Universe) []Command {
	active := ActiveRight(u)
	var cmds []Command
	for _, alpha := range u.All() {
		if alpha == active {
			continue // activity is an attribute, not a transferable right
		}
		a := rights.Of(alpha)
		cmds = append(cmds, Command{
			Name:      "take_" + u.Name(alpha),
			NumParams: 3,
			Conditions: []Condition{
				{Right: active, S: 0, O: 0},
				{Right: rights.Take, S: 0, O: 1},
				{Right: alpha, S: 1, O: 2},
			},
			Body: []Primitive{{Kind: OpEnter, Rights: a, S: 0, O: 2}},
		})
		cmds = append(cmds, Command{
			Name:      "grant_" + u.Name(alpha),
			NumParams: 3,
			Conditions: []Condition{
				{Right: active, S: 0, O: 0},
				{Right: rights.Grant, S: 0, O: 1},
				{Right: alpha, S: 0, O: 2},
			},
			Body: []Primitive{{Kind: OpEnter, Rights: a, S: 1, O: 2}},
		})
		cmds = append(cmds, Command{
			Name:      "remove_" + u.Name(alpha),
			NumParams: 2,
			Conditions: []Condition{
				{Right: active, S: 0, O: 0},
			},
			Body: []Primitive{{Kind: OpDelete, Rights: a, S: 0, O: 1}},
		})
	}
	cmds = append(cmds, Command{
		Name:      "create_object",
		NumParams: 2,
		Conditions: []Condition{
			{Right: active, S: 0, O: 0},
		},
		Body: []Primitive{
			{Kind: OpCreateSubject, S: 1}, // a row without the active right
			{Kind: OpEnter, Rights: rights.Of(rights.Take, rights.Grant, rights.Read, rights.Write), S: 0, O: 1},
		},
	})
	return cmds
}

// Reachable runs bounded breadth-first search over command applications:
// every matrix reachable within depth steps, deduplicated canonically.
// Subjects invoke commands, so the first parameter of each enumerated
// instantiation ranges over subjects and the rest over all entities; the
// create command mints canonical names "c<N>".
func Reachable(m *Matrix, cmds []Command, depth, maxStates int) (map[string]bool, bool) {
	if maxStates <= 0 {
		maxStates = 10000
	}
	type state struct {
		m *Matrix
		d int
	}
	seen := map[string]bool{m.Canonical(): true}
	queue := []state{{m: m.Clone(), d: 0}}
	truncated := false
	for len(queue) > 0 && !truncated {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= depth {
			continue
		}
		var entities []string
		for o := range cur.m.objects {
			entities = append(entities, o)
		}
		sort.Strings(entities)
		subjects := entities // conditions gate actors by the active right
		for ci := range cmds {
			cmd := &cmds[ci]
			for _, inst := range instantiations(cmd, subjects, entities, cur.m) {
				next := cur.m.Clone()
				if cmd.Run(next, inst...) != nil {
					continue
				}
				key := next.Canonical()
				if seen[key] {
					continue
				}
				seen[key] = true
				if len(seen) >= maxStates {
					truncated = true
					break
				}
				queue = append(queue, state{m: next, d: cur.d + 1})
			}
			if truncated {
				break
			}
		}
	}
	return seen, truncated
}

// instantiations enumerates parameter bindings: the actor (parameter 0)
// ranges over subjects; later parameters over all entities; the last
// parameter of create_object is a fresh canonical name.
func instantiations(cmd *Command, subjects, entities []string, m *Matrix) [][]string {
	if cmd.Name == "create_object" {
		fresh := fmt.Sprintf("c%d", len(m.objects))
		if m.objects[fresh] {
			return nil
		}
		var out [][]string
		for _, s := range subjects {
			out = append(out, []string{s, fresh})
		}
		return out
	}
	var out [][]string
	var rec func(binding []string)
	rec = func(binding []string) {
		if len(binding) == cmd.NumParams {
			out = append(out, append([]string(nil), binding...))
			return
		}
		pool := entities
		if len(binding) == 0 {
			pool = subjects
		}
		for _, e := range pool {
			rec(append(binding, e))
		}
	}
	rec(nil)
	return out
}
