package hru

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/explore"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(nil)
	if err := m.AddSubject("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddObject("f"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSubject("a"); err == nil {
		t.Error("duplicate subject accepted")
	}
	if err := m.Enter("a", "f", rights.RW); err != nil {
		t.Fatal(err)
	}
	if m.Get("a", "f") != rights.RW {
		t.Errorf("cell = %v", m.Get("a", "f"))
	}
	if err := m.Enter("f", "a", rights.R); err == nil {
		t.Error("object row accepted")
	}
	if err := m.Delete("a", "f", rights.R); err != nil {
		t.Fatal(err)
	}
	if m.Get("a", "f") != rights.W {
		t.Errorf("after delete = %v", m.Get("a", "f"))
	}
	if !m.IsSubject("a") || m.IsSubject("f") || !m.Exists("f") || m.Exists("z") {
		t.Error("membership wrong")
	}
}

func TestCloneAndCanonical(t *testing.T) {
	m := NewMatrix(nil)
	m.AddSubject("a")
	m.AddObject("f")
	m.Enter("a", "f", rights.R)
	c := m.Clone()
	if c.Canonical() != m.Canonical() {
		t.Error("clone canonical differs")
	}
	c.Enter("a", "f", rights.W)
	if c.Canonical() == m.Canonical() {
		t.Error("mutation shared")
	}
}

func TestCommandRun(t *testing.T) {
	u := rights.NewUniverse()
	cmds := TakeGrantCommands(u)
	m := NewMatrix(u)
	active := ActiveRight(u)
	m.AddSubject("x")
	m.AddSubject("y")
	m.AddSubject("z")
	m.EnterDiagonal("x", rights.Of(active))
	m.Enter("x", "y", rights.T)
	m.Enter("y", "z", rights.R)
	var takeR *Command
	for i := range cmds {
		if cmds[i].Name == "take_r" {
			takeR = &cmds[i]
		}
	}
	if takeR == nil {
		t.Fatal("take_r missing")
	}
	if err := takeR.Run(m, "x", "y", "z"); err != nil {
		t.Fatal(err)
	}
	if !m.Get("x", "z").Has(rights.Read) {
		t.Error("take_r did not enter the right")
	}
	// An inactive actor is refused by the condition.
	if err := takeR.Run(m, "y", "x", "z"); err == nil {
		t.Error("inactive actor ran a command")
	}
	// Distinctness enforced.
	if err := takeR.Run(m, "x", "x", "z"); err == nil {
		t.Error("repeated parameters accepted")
	}
	if err := takeR.Run(m, "x", "y"); err == nil {
		t.Error("arity not checked")
	}
}

func TestGraphMatrixRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		ActiveRight(g.Universe()) // align right numbering
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(2) == 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < 2*n; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		back, err := FromGraph(g).ToGraph()
		if err != nil {
			return false
		}
		// Compare by re-encoding: names and labels must match exactly.
		return FromGraph(back).Canonical() == FromGraph(g).Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHRUEncodingMatchesGraphRules is the headline cross-check: the HRU
// command encoding and the native graph-rewriting engine explore exactly
// the same state space (compared through the matrix encoding).
func TestHRUEncodingMatchesGraphRules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New(nil)
		ActiveRight(g.Universe())
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			name := "v" + string(rune('a'+i))
			if rng.Intn(3) > 0 {
				g.MustSubject(name)
			} else {
				g.MustObject(name)
			}
		}
		vs := g.Vertices()
		for i := 0; i < n+2; i++ {
			a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
			if a != b {
				g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
			}
		}
		depth := 3
		// Native graph rules.
		graphStates := make(map[string]bool)
		res := explore.Visit(g, explore.Options{MaxDepth: depth, MaxStates: 60000, DeJure: true},
			func(h *graph.Graph, _ int) bool {
				graphStates[FromGraph(h).Canonical()] = true
				return true
			})
		// HRU commands, aligned with the explorer's options: take and
		// grant only (no remove, no create).
		var core []Command
		for _, c := range TakeGrantCommands(g.Universe()) {
			if len(c.Name) > 4 && (c.Name[:4] == "take" || c.Name[:5] == "grant") {
				core = append(core, c)
			}
		}
		hruStates, truncated := Reachable(FromGraph(g), core, depth, 60000)
		if res.Truncated || truncated {
			return true // cannot compare partial spaces
		}
		if len(graphStates) != len(hruStates) {
			t.Logf("seed %d: %d graph states vs %d hru states", seed, len(graphStates), len(hruStates))
			return false
		}
		for k := range graphStates {
			if !hruStates[k] {
				t.Logf("seed %d: graph state missing from HRU space", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReachableWithCreate(t *testing.T) {
	u := rights.NewUniverse()
	m := NewMatrix(u)
	active := ActiveRight(u)
	m.AddSubject("x")
	m.EnterDiagonal("x", rights.Of(active))
	states, truncated := Reachable(m, TakeGrantCommands(u), 1, 100)
	if truncated {
		t.Fatal("truncated")
	}
	// Initial state + one created object.
	if len(states) != 2 {
		t.Errorf("states = %d", len(states))
	}
}
