// Package hru implements the Harrison–Ruzzo–Ullman protection model: an
// access-control matrix evolved by guarded commands built from six
// primitive operations. It is the general setting the Take-Grant model
// specialises: HRU safety ("can right r ever appear in cell (s,o)?") is
// undecidable in general, while the Take-Grant rules — expressed here as
// four HRU commands — admit the linear-time decision procedures of the
// analysis package.
//
// The package provides the matrix, a command interpreter, the Take-Grant
// command encoding, a graph↔matrix bridge, and a bounded reachability
// search used to cross-check the graph-rewriting explorer: on the same
// initial state, the HRU encoding and the native rule engine reach
// exactly the same access matrices.
package hru

import (
	"fmt"
	"sort"
	"strings"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// Matrix is an access-control matrix: rights[subject][object] ⊆ R.
// Subjects are also objects (the diagonal and subject-subject cells exist).
type Matrix struct {
	u        *rights.Universe
	subjects map[string]bool
	objects  map[string]bool // includes subjects
	cells    map[string]map[string]rights.Set
}

// NewMatrix returns an empty matrix over the universe (nil for default).
func NewMatrix(u *rights.Universe) *Matrix {
	if u == nil {
		u = rights.NewUniverse()
	}
	return &Matrix{
		u:        u,
		subjects: make(map[string]bool),
		objects:  make(map[string]bool),
		cells:    make(map[string]map[string]rights.Set),
	}
}

// Universe returns the matrix's rights universe.
func (m *Matrix) Universe() *rights.Universe { return m.u }

// AddSubject registers a subject (and object) name.
func (m *Matrix) AddSubject(name string) error {
	if m.objects[name] {
		return fmt.Errorf("hru: %q already exists", name)
	}
	m.subjects[name] = true
	m.objects[name] = true
	return nil
}

// AddObject registers a pure object name.
func (m *Matrix) AddObject(name string) error {
	if m.objects[name] {
		return fmt.Errorf("hru: %q already exists", name)
	}
	m.objects[name] = true
	return nil
}

// IsSubject reports whether name is a subject.
func (m *Matrix) IsSubject(name string) bool { return m.subjects[name] }

// Exists reports whether name is known.
func (m *Matrix) Exists(name string) bool { return m.objects[name] }

// Get returns the cell (s, o).
func (m *Matrix) Get(s, o string) rights.Set {
	return m.cells[s][o]
}

// Enter adds rights to cell (s, o) — the "enter" primitive.
func (m *Matrix) Enter(s, o string, set rights.Set) error {
	if !m.subjects[s] {
		return fmt.Errorf("hru: %q is not a subject", s)
	}
	if !m.objects[o] {
		return fmt.Errorf("hru: unknown object %q", o)
	}
	row := m.cells[s]
	if row == nil {
		row = make(map[string]rights.Set)
		m.cells[s] = row
	}
	row[o] = row[o].Union(set)
	return nil
}

// Delete removes rights from cell (s, o) — the "delete" primitive.
func (m *Matrix) Delete(s, o string, set rights.Set) error {
	if !m.subjects[s] || !m.objects[o] {
		return fmt.Errorf("hru: unknown cell (%s,%s)", s, o)
	}
	if row := m.cells[s]; row != nil {
		row[o] = row[o].Minus(set)
		if row[o].Empty() {
			delete(row, o)
		}
	}
	return nil
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.u)
	for s := range m.subjects {
		c.subjects[s] = true
	}
	for o := range m.objects {
		c.objects[o] = true
	}
	for s, row := range m.cells {
		nr := make(map[string]rights.Set, len(row))
		for o, set := range row {
			nr[o] = set
		}
		c.cells[s] = nr
	}
	return c
}

// Canonical returns a deterministic encoding for state deduplication.
func (m *Matrix) Canonical() string {
	var names []string
	for o := range m.objects {
		names = append(names, o)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		if m.subjects[n] {
			b.WriteString("s:")
		} else {
			b.WriteString("o:")
		}
		b.WriteString(n)
		b.WriteByte(';')
	}
	b.WriteByte('|')
	var cells []string
	for s, row := range m.cells {
		for o, set := range row {
			if !set.Empty() {
				cells = append(cells, fmt.Sprintf("%s>%s:%x", s, o, uint64(set)))
			}
		}
	}
	sort.Strings(cells)
	b.WriteString(strings.Join(cells, ";"))
	return b.String()
}

// ActiveRight returns (declaring if needed) the distinguished right that
// encodes Take-Grant subject-ness in a matrix: every graph vertex becomes
// a matrix row, and a vertex is an acting subject iff "active" sits on
// its diagonal cell. This is the standard embedding of Take-Grant into
// HRU — the matrix has no native notion of passive rows, so activity is a
// right the commands test.
func ActiveRight(u *rights.Universe) rights.Right {
	return u.MustDeclare("active")
}

// FromGraph converts a protection graph's explicit authority into a
// matrix: all vertices become rows; subjects carry the active right on
// their diagonal.
func FromGraph(g *graph.Graph) *Matrix {
	m := NewMatrix(g.Universe())
	active := ActiveRight(m.u)
	for _, v := range g.Vertices() {
		m.AddSubject(g.Name(v))
		if g.IsSubject(v) {
			m.EnterDiagonal(g.Name(v), rights.Of(active))
		}
	}
	for _, e := range g.Edges() {
		if !e.Explicit.Empty() {
			m.Enter(g.Name(e.Src), g.Name(e.Dst), e.Explicit)
		}
	}
	return m
}

// EnterDiagonal enters rights into (name, name); diagonal cells encode
// per-entity attributes such as activity.
func (m *Matrix) EnterDiagonal(name string, set rights.Set) error {
	if !m.subjects[name] {
		return fmt.Errorf("hru: unknown entity %q", name)
	}
	row := m.cells[name]
	if row == nil {
		row = make(map[string]rights.Set)
		m.cells[name] = row
	}
	row[name] = row[name].Union(set)
	return nil
}

// ToGraph converts a matrix back into a protection graph: entities with
// the active right on their diagonal become subjects.
func (m *Matrix) ToGraph() (*graph.Graph, error) {
	g := graph.New(m.u)
	active := ActiveRight(m.u)
	var names []string
	for o := range m.objects {
		names = append(names, o)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		if m.Get(n, n).Has(active) {
			_, err = g.AddSubject(n)
		} else {
			_, err = g.AddObject(n)
		}
		if err != nil {
			return nil, err
		}
	}
	for s, row := range m.cells {
		src, _ := g.Lookup(s)
		for o, set := range row {
			dst, _ := g.Lookup(o)
			if src == dst {
				continue // diagonal attributes have no graph edge
			}
			if err := g.AddExplicit(src, dst, set); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
