// Package fault is a test-only fault-injection registry.
//
// Production code marks interesting points with fault.Inject("name");
// tests install hooks with fault.Set to make those points panic, sleep,
// or block — proving the panic-recovery middleware, the load-shedding
// semaphore and the cancellation paths actually degrade gracefully
// instead of taking the process down.
//
// With no hooks installed (every production deployment) Inject is a
// single atomic load and a branch; the registry map is never touched.
package fault

import (
	"sync"
	"sync/atomic"
)

var (
	active   atomic.Bool // fast-path gate: false ⇒ no hooks anywhere
	mu       sync.Mutex
	hooks    map[string]func()
	errHooks map[string]func() error
)

// Inject runs the hook installed under name, if any. The common case —
// no hooks installed at all — costs one atomic load.
func Inject(name string) {
	if !active.Load() {
		return
	}
	mu.Lock()
	f := hooks[name]
	mu.Unlock()
	if f != nil {
		f()
	}
}

// InjectErr consults the error hook installed under name. Production
// points where a failure must surface as an error — a failed disk write,
// not a panic — call it just before the real operation; the injected
// error stands in for the operation failing. Nil with no hook installed,
// at the same one-atomic-load cost as Inject.
func InjectErr(name string) error {
	if !active.Load() {
		return nil
	}
	mu.Lock()
	f := errHooks[name]
	mu.Unlock()
	if f != nil {
		return f()
	}
	return nil
}

// SetErr installs f as the error hook for name, replacing any previous
// hook. The hook may also perform damage (e.g. scribble on the file the
// production code was about to write) before returning its error.
// Test-only; pair with a deferred Clear or Reset.
func SetErr(name string, f func() error) {
	mu.Lock()
	defer mu.Unlock()
	if errHooks == nil {
		errHooks = make(map[string]func() error)
	}
	errHooks[name] = f
	active.Store(true)
}

// Set installs f as the hook for name, replacing any previous hook.
// Test-only; pair with a deferred Clear or Reset.
func Set(name string, f func()) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[string]func())
	}
	hooks[name] = f
	active.Store(true)
}

// Clear removes the hooks for name.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, name)
	delete(errHooks, name)
	if len(hooks) == 0 && len(errHooks) == 0 {
		active.Store(false)
	}
}

// Reset removes every hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	errHooks = nil
	active.Store(false)
}
