package fault

import (
	"fmt"
	"math/rand"
	"sync"
)

// Chaos is a seeded scheduler over the fault registry: a set of rules,
// each binding an injection point to a firing probability, an optional
// fire cap, and an effect (an error to return, or an arbitrary action
// such as a panic). Every random draw comes from one seeded source, so a
// chaos run is replayable from its seed — a failing -race suite prints
// the seed and the exact storm can be re-run.
//
// Arm installs every rule through Set/SetErr; Disarm removes exactly the
// points this Chaos armed (other hooks are untouched). Fires reports how
// often each rule actually triggered, so tests can assert the storm was
// real and not a no-op.
type Chaos struct {
	seed  int64
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]*chaosRule
	armed bool
}

type chaosRule struct {
	prob   float64
	max    int // 0 ⇒ unlimited
	fires  int
	err    func() error // nil for action rules
	action func()       // nil for error rules
}

// NewChaos builds an empty scheduler around the given seed.
func NewChaos(seed int64) *Chaos {
	return &Chaos{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]*chaosRule),
	}
}

// Seed returns the seed the scheduler was built with, for failure logs.
func (c *Chaos) Seed() int64 { return c.seed }

// RuleErr registers an error rule: the injection point fails with err()
// with probability prob per hit, at most max times (0 = unlimited).
// Must be called before Arm.
func (c *Chaos) RuleErr(point string, prob float64, max int, err func() error) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules[point] = &chaosRule{prob: prob, max: max, err: err}
	return c
}

// Rule registers an action rule (typically a panic) with probability
// prob per hit, at most max times (0 = unlimited). Must be called
// before Arm.
func (c *Chaos) Rule(point string, prob float64, max int, action func()) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules[point] = &chaosRule{prob: prob, max: max, action: action}
	return c
}

// Arm installs every rule into the fault registry. Draws and fire counts
// are serialized under the Chaos mutex, so concurrent injection points
// still consume the seeded stream deterministically in aggregate.
func (c *Chaos) Arm() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.armed {
		return
	}
	c.armed = true
	for point, r := range c.rules {
		point, r := point, r
		if r.err != nil {
			SetErr(point, func() error {
				if !c.draw(r) {
					return nil
				}
				return r.err()
			})
		} else {
			Set(point, func() {
				if c.draw(r) {
					r.action()
				}
			})
		}
	}
}

// draw decides whether rule r fires this hit.
func (c *Chaos) draw(r *chaosRule) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.max > 0 && r.fires >= r.max {
		return false
	}
	if c.rng.Float64() >= r.prob {
		return false
	}
	r.fires++
	return true
}

// Disarm removes the hooks this Chaos armed. Rules and fire counts are
// retained for inspection.
func (c *Chaos) Disarm() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		return
	}
	c.armed = false
	for point := range c.rules {
		Clear(point)
	}
}

// Fires returns per-point trigger counts.
func (c *Chaos) Fires() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.rules))
	for point, r := range c.rules {
		out[point] = r.fires
	}
	return out
}

// TotalFires sums trigger counts across every rule.
func (c *Chaos) TotalFires() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.rules {
		n += r.fires
	}
	return n
}

// String summarizes the scheduler for failure messages.
func (c *Chaos) String() string {
	return fmt.Sprintf("chaos(seed=%d, rules=%d)", c.seed, len(c.rules))
}
