package shard

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := New([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	b := New([]string{"http://c:8080", "http://a:8080", "http://b:8080"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("peer order changed ownership of %q: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
		if a.Owner(key) != a.Owner(key) {
			t.Fatalf("Owner(%q) not deterministic", key)
		}
	}
}

func TestOwnershipSpread(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"}
	r := New(peers)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("ns-%d", i))]++
	}
	for _, p := range peers {
		// Perfect balance is keys/4 = 1000; consistent hashing with 64
		// vnodes should keep every peer within a loose 2x band.
		if counts[p] < keys/8 || counts[p] > keys/2 {
			t.Errorf("peer %s owns %d of %d keys — pathological spread %v", p, counts[p], keys, counts)
		}
	}
}

// TestSpreadWithNearIdenticalPeers pins the regression that bare FNV
// hides: real fleets name peers by URLs that differ only in a port or
// host digit. Without the avalanche finalizer each peer's vnodes clump
// and one node ends up owning ~97% of the keyspace.
func TestSpreadWithNearIdenticalPeers(t *testing.T) {
	peers := []string{"http://127.0.0.1:18451", "http://127.0.0.1:18452"}
	r := New(peers)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("ns-%d", i))]++
	}
	for _, p := range peers {
		if counts[p] < keys/4 || counts[p] > 3*keys/4 {
			t.Errorf("peer %s owns %d of %d keys — pathological spread %v", p, counts[p], keys, counts)
		}
	}
}

func TestRemovingPeerMovesOnlyItsKeys(t *testing.T) {
	full := New([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	less := New([]string{"http://a:8080", "http://b:8080"})
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ns-%d", i)
		was, now := full.Owner(key), less.Owner(key)
		if was == "http://c:8080" {
			if now == "http://c:8080" {
				t.Fatalf("removed peer still owns %q", key)
			}
			continue // had to move
		}
		if was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed peer moved anyway", moved)
	}
}

func TestSinglePeerOwnsEverything(t *testing.T) {
	r := New([]string{"http://only:8080"})
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != "http://only:8080" {
			t.Fatalf("Owner = %q", got)
		}
	}
	if New(nil) != nil {
		t.Error("empty peer set should yield a nil ring")
	}
}

// TestAddPeerMovesBoundedShare pins the scale-out half of the
// consistent-hashing contract: growing N peers to N+1 moves only the
// keys the newcomer claims (~1/(N+1) of them) and nothing else — every
// key that does not land on the new peer keeps its old owner, so a
// rolling expansion never reshuffles namespaces between survivors.
func TestAddPeerMovesBoundedShare(t *testing.T) {
	old := New([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	grown := New([]string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"})
	const keys = 3000
	claimed := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ns-%d", i)
		was, now := old.Owner(key), grown.Owner(key)
		if now == "http://d:8080" {
			claimed++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %s -> %s without landing on the new peer", key, was, now)
		}
	}
	// The newcomer should claim roughly a quarter; far outside that band
	// means the vnode spread has regressed.
	if claimed < keys/8 || claimed > keys/2 {
		t.Errorf("new peer claimed %d of %d keys, want ~%d", claimed, keys, keys/4)
	}
}

// TestRebuildOrderStability pins what the fleet actually depends on:
// every process builds its own ring from a -peers flag, and flags get
// reordered by humans and orchestrators. All permutations of the same
// set must agree on every owner — otherwise two nodes would both (or
// neither) claim a namespace and redirect loops follow.
func TestRebuildOrderStability(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"}
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}, {3, 0, 1, 2}}
	rings := make([]*Ring, len(perms))
	for i, p := range perms {
		shuffled := make([]string, len(p))
		for j, idx := range p {
			shuffled[j] = peers[idx]
		}
		rings[i] = New(shuffled)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		want := rings[0].Owner(key)
		for j, r := range rings[1:] {
			if got := r.Owner(key); got != want {
				t.Fatalf("permutation %v disagrees on %q: %s vs %s", perms[j+1], key, got, want)
			}
		}
	}
	// Duplicated entries (a peer listed twice in the flag) collapse to
	// the same ring rather than double-weighting the repeated peer.
	dup := New([]string{"http://a:8080", "http://b:8080", "http://a:8080",
		"http://c:8080", "http://d:8080", "http://b:8080"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		if dup.Owner(key) != rings[0].Owner(key) {
			t.Fatalf("duplicate peer entries changed ownership of %q", key)
		}
	}
}
