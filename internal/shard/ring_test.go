package shard

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := New([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	b := New([]string{"http://c:8080", "http://a:8080", "http://b:8080"})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("peer order changed ownership of %q: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
		if a.Owner(key) != a.Owner(key) {
			t.Fatalf("Owner(%q) not deterministic", key)
		}
	}
}

func TestOwnershipSpread(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"}
	r := New(peers)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("ns-%d", i))]++
	}
	for _, p := range peers {
		// Perfect balance is keys/4 = 1000; consistent hashing with 64
		// vnodes should keep every peer within a loose 2x band.
		if counts[p] < keys/8 || counts[p] > keys/2 {
			t.Errorf("peer %s owns %d of %d keys — pathological spread %v", p, counts[p], keys, counts)
		}
	}
}

// TestSpreadWithNearIdenticalPeers pins the regression that bare FNV
// hides: real fleets name peers by URLs that differ only in a port or
// host digit. Without the avalanche finalizer each peer's vnodes clump
// and one node ends up owning ~97% of the keyspace.
func TestSpreadWithNearIdenticalPeers(t *testing.T) {
	peers := []string{"http://127.0.0.1:18451", "http://127.0.0.1:18452"}
	r := New(peers)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("ns-%d", i))]++
	}
	for _, p := range peers {
		if counts[p] < keys/4 || counts[p] > 3*keys/4 {
			t.Errorf("peer %s owns %d of %d keys — pathological spread %v", p, counts[p], keys, counts)
		}
	}
}

func TestRemovingPeerMovesOnlyItsKeys(t *testing.T) {
	full := New([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	less := New([]string{"http://a:8080", "http://b:8080"})
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("ns-%d", i)
		was, now := full.Owner(key), less.Owner(key)
		if was == "http://c:8080" {
			if now == "http://c:8080" {
				t.Fatalf("removed peer still owns %q", key)
			}
			continue // had to move
		}
		if was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed peer moved anyway", moved)
	}
}

func TestSinglePeerOwnsEverything(t *testing.T) {
	r := New([]string{"http://only:8080"})
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != "http://only:8080" {
			t.Fatalf("Owner = %q", got)
		}
	}
	if New(nil) != nil {
		t.Error("empty peer set should yield a nil ring")
	}
}
