// Package shard maps namespace names onto a fixed peer set with a
// consistent-hash ring, so a fleet of tgserve processes can each own a
// subset of namespaces and redirect the rest: the paper's "one monitor,
// many protection structures" sliced horizontally. Adding or removing a
// peer moves only ~1/N of the namespaces — the property plain modulo
// hashing lacks.
package shard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodesPerPeer spreads each peer around the ring; more vnodes, smoother
// load at the cost of a longer (still binary-searched) ring.
const vnodesPerPeer = 64

type vnode struct {
	hash uint64
	peer int // index into peers
}

// Ring is an immutable consistent-hash ring over a peer set. Build once
// at startup; Owner is safe for concurrent use.
type Ring struct {
	peers  []string
	vnodes []vnode
}

// New builds a ring over the peer addresses. Order does not matter —
// two processes given the same set in any order agree on every owner.
// Returns nil for an empty set.
func New(peers []string) *Ring {
	if len(peers) == 0 {
		return nil
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	r := &Ring{peers: sorted}
	r.vnodes = make([]vnode, 0, len(sorted)*vnodesPerPeer)
	for i, p := range sorted {
		for v := 0; v < vnodesPerPeer; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(p + "#" + strconv.Itoa(v)), peer: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		// Hash ties break on peer index so equal rings agree exactly.
		return r.vnodes[a].peer < r.vnodes[b].peer
	})
	return r
}

// Owner returns the peer responsible for key: the first vnode clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap: the ring is a circle
	}
	return r.peers[r.vnodes[i].peer]
}

// Peers returns the (sorted) peer set.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// hash64 is FNV-64a finished with murmur3's fmix64 avalanche. Bare FNV
// is a poor ring hash: strings sharing a long prefix (peer URLs that
// differ only in a port digit, vnode keys differing only in the "#N"
// suffix) hash to tight clusters, which collapses a peer's 64 vnodes
// into a couple of ring points and skews ownership to one node. The
// finalizer diffuses every input bit across the word.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
