// Package relang decides membership of protection-graph paths in regular
// languages over the edge-word alphabet of the Take-Grant model.
//
// Every step of a path v0,…,vk contributes one symbol: a right x together
// with a direction — x→ ("Fwd") when the edge runs along the path (from
// v(i-1) to v(i)), x← ("Rev") when it runs against it. The model's span,
// bridge and connection sets are regular languages over this alphabet
// (e.g. bridges are t→* ∪ t←* ∪ t→*g→t←* ∪ t→*g←t←*).
//
// Two features go beyond plain regular expressions because the paper's path
// classes need them:
//
//   - Transitions may carry vertex-kind guards. An admissible rw-path
//     (Theorem 3.1) requires the reading endpoint of every r→ step and the
//     writing endpoint of every w← step to be a subject.
//   - Accept-to-start ε-loops guarded on "current vertex is a subject"
//     express iterated languages such as (bridge)* whose iteration boundary
//     must fall on a subject.
//
// The package compiles expressions to NFAs (Thompson construction), can
// specialise them to guard-aware DFAs, and searches the product of an
// automaton with a protection graph, returning witness paths.
package relang

import (
	"fmt"
	"strings"

	"takegrant/internal/rights"
)

// Dir orients a symbol relative to the path being read.
type Dir uint8

const (
	// Fwd: the edge points along the path, v(i-1) → v(i).
	Fwd Dir = iota
	// Rev: the edge points against the path, v(i) → v(i-1).
	Rev
)

func (d Dir) String() string {
	if d == Fwd {
		return ">"
	}
	return "<"
}

// Symbol is one letter of the edge-word alphabet: a right plus a direction.
type Symbol struct {
	Right rights.Right
	Dir   Dir
}

// Format renders the symbol in the package's text syntax, e.g. "t>" or "w<".
func (s Symbol) Format(u *rights.Universe) string {
	return u.Name(s.Right) + s.Dir.String()
}

// Convenience symbols for the four distinguished rights.
var (
	TFwd = Symbol{rights.Take, Fwd}
	TRev = Symbol{rights.Take, Rev}
	GFwd = Symbol{rights.Grant, Fwd}
	GRev = Symbol{rights.Grant, Rev}
	RFwd = Symbol{rights.Read, Fwd}
	RRev = Symbol{rights.Read, Rev}
	WFwd = Symbol{rights.Write, Fwd}
	WRev = Symbol{rights.Write, Rev}
)

// Guard constrains which vertices a transition may touch.
type Guard uint8

const (
	// GuardNone places no constraint.
	GuardNone Guard = iota
	// GuardTailSubject requires the vertex the step leaves — v(i-1) in
	// path order — to be a subject.
	GuardTailSubject
	// GuardHeadSubject requires the vertex the step enters — v(i) — to be
	// a subject.
	GuardHeadSubject
)

func (g Guard) String() string {
	switch g {
	case GuardNone:
		return ""
	case GuardTailSubject:
		return "[tail]"
	case GuardHeadSubject:
		return "[head]"
	default:
		return fmt.Sprintf("[guard%d]", uint8(g))
	}
}

// Expr is a regular expression over guarded symbols. Build with Lit, Seq,
// Alt, Star, Plus, Opt and Eps.
type Expr struct {
	op       exprOp
	sym      Symbol
	guard    Guard
	children []*Expr
}

type exprOp uint8

const (
	opEps exprOp = iota
	opLit
	opSeq
	opAlt
	opStar
)

// Eps is the expression matching only the empty word.
func Eps() *Expr { return &Expr{op: opEps} }

// Lit matches exactly one occurrence of the symbol, unguarded.
func Lit(s Symbol) *Expr { return &Expr{op: opLit, sym: s} }

// LitG matches one occurrence of the symbol with a vertex-kind guard.
func LitG(s Symbol, g Guard) *Expr { return &Expr{op: opLit, sym: s, guard: g} }

// Seq matches the concatenation of its arguments; Seq() is Eps().
func Seq(es ...*Expr) *Expr {
	switch len(es) {
	case 0:
		return Eps()
	case 1:
		return es[0]
	}
	return &Expr{op: opSeq, children: es}
}

// Alt matches any one of its arguments; Alt() matches nothing... it is
// invalid to call Alt with no arguments.
func Alt(es ...*Expr) *Expr {
	if len(es) == 0 {
		panic("relang: Alt requires at least one alternative")
	}
	if len(es) == 1 {
		return es[0]
	}
	return &Expr{op: opAlt, children: es}
}

// Star matches zero or more repetitions of e.
func Star(e *Expr) *Expr { return &Expr{op: opStar, children: []*Expr{e}} }

// Plus matches one or more repetitions of e.
func Plus(e *Expr) *Expr { return Seq(e, Star(e)) }

// Opt matches zero or one occurrence of e.
func Opt(e *Expr) *Expr { return Alt(e, Eps()) }

// Format renders the expression in the package's text syntax.
func (e *Expr) Format(u *rights.Universe) string {
	var b strings.Builder
	e.format(u, &b, 0)
	return b.String()
}

// precedence levels: 0 alt, 1 seq, 2 star/atom
func (e *Expr) format(u *rights.Universe, b *strings.Builder, prec int) {
	switch e.op {
	case opEps:
		b.WriteString("ε")
	case opLit:
		b.WriteString(e.sym.Format(u))
		b.WriteString(e.guard.String())
	case opSeq:
		if prec > 1 {
			b.WriteByte('(')
		}
		for i, c := range e.children {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.format(u, b, 2)
		}
		if prec > 1 {
			b.WriteByte(')')
		}
	case opAlt:
		if prec > 0 {
			b.WriteByte('(')
		}
		for i, c := range e.children {
			if i > 0 {
				b.WriteString(" | ")
			}
			c.format(u, b, 1)
		}
		if prec > 0 {
			b.WriteByte(')')
		}
	case opStar:
		e.children[0].format(u, b, 2)
		b.WriteByte('*')
	}
}

// Matches reports whether the given word (with per-step tail/head vertex
// kinds supplied by subjectAt: subjectAt(i) reports whether path vertex i is
// a subject) is in the language. It is a reference implementation used to
// cross-check the automata; word position i is the step from vertex i to
// vertex i+1.
func (e *Expr) Matches(word []Symbol, subjectAt func(int) bool) bool {
	nfa := Compile(e)
	cur := nfa.closure(map[int]struct{}{nfa.start: {}}, subjectAt(0))
	for i, sym := range word {
		next := make(map[int]struct{})
		for st := range cur {
			for _, tr := range nfa.states[st].syms {
				if tr.sym != sym {
					continue
				}
				if !guardOK(tr.guard, subjectAt(i), subjectAt(i+1)) {
					continue
				}
				next[tr.to] = struct{}{}
			}
		}
		cur = nfa.closure(next, subjectAt(i+1))
		if len(cur) == 0 {
			return false
		}
	}
	_, ok := cur[nfa.accept]
	return ok
}

func guardOK(g Guard, tailSubject, headSubject bool) bool {
	switch g {
	case GuardTailSubject:
		return tailSubject
	case GuardHeadSubject:
		return headSubject
	default:
		return true
	}
}
