package relang

import (
	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// View selects which edge labels a search traverses.
type View uint8

const (
	// ViewExplicit traverses only explicit (de jure) labels. Spans and
	// bridges are defined over explicit authority.
	ViewExplicit View = iota
	// ViewCombined traverses the union of explicit and implicit labels.
	// Admissible rw-paths may ride implicit edges added by de facto rules.
	ViewCombined
)

// Options configures a product search.
type Options struct {
	// View selects the traversed labels; default ViewExplicit.
	View View
	// Allow, when non-nil, restricts traversal to vertices it admits.
	// Start vertices are always admitted.
	Allow func(graph.ID) bool
	// Trace records per-state steps so Witness and Origin work. Leave it
	// off for boolean reachability — the searches under CanShare/CanKnow
	// run hot and skip the bookkeeping.
	Trace bool
	// Budget, when non-nil, is charged one unit per product state expanded.
	// When it trips, the search stops where it is and Result.Err reports
	// the exhaustion; the partial Result must not be read as a verdict.
	Budget *budget.Budget
}

// Step is one edge traversal of a witness path.
type Step struct {
	From, To graph.ID // path order: the step leaves From and enters To
	Sym      Symbol
}

// Result holds the reachable product states of a Search and supports
// witness-path extraction.
//
// Internally product states (vertex, nfa-state) are indexed densely as
// vertex*numStates+state: the search is the hot path under every decision
// procedure, and slice-indexed parent tracking beats hashing by a wide
// margin.
type Result struct {
	g      *graph.Graph
	n      *NFA
	states int
	// parent[idx] is the predecessor product index (selfParent for
	// starts, -1 for unvisited); steps[idx] is the edge taken (Sym.Right
	// == stepNone for ε-moves and starts).
	parent  []int32
	steps   []Step
	accepts map[graph.ID]int32 // first accepting product index per vertex
	order   []graph.ID         // accepted vertices in discovery order
	visited int                // product states enqueued
	scanned int                // half-edges examined across all expansions
	err     error              // non-nil when a budget aborted the search
}

const (
	unvisited  = int32(-1)
	selfParent = int32(-2)
	stepNone   = rights.Right(255)
)

func (r *Result) key(v graph.ID, st int) int32 { return int32(int(v)*r.states + st) }

// Search explores the product of the protection graph with the automaton,
// starting at every vertex in starts (in the automaton's start state), and
// returns the reachable product states. A vertex is "accepted" when some
// path from a start vertex to it spells a word of the language.
//
// The search explores walks: vertices may repeat along a witness. For every
// language in this model that is the intended semantics — the rewriting
// rules that realise a span, bridge or connection are insensitive to
// revisits (see analysis package documentation).
func Search(g *graph.Graph, n *NFA, starts []graph.ID, opts Options) *Result {
	res := &Result{
		g:       g,
		n:       n,
		states:  len(n.states),
		parent:  make([]int32, g.Cap()*len(n.states)),
		accepts: make(map[graph.ID]int32),
	}
	if opts.Trace {
		res.steps = make([]Step, g.Cap()*len(n.states))
	}
	for i := range res.parent {
		res.parent[i] = unvisited
	}
	queue := make([]int32, 0, len(starts)*2)
	add := func(v graph.ID, st int, parent int32, step Step) {
		k := res.key(v, st)
		if res.parent[k] != unvisited {
			return
		}
		res.parent[k] = parent
		if res.steps != nil {
			res.steps[k] = step
		}
		queue = append(queue, k)
		if st == n.accept {
			if _, seen := res.accepts[v]; !seen {
				res.accepts[v] = k
				res.order = append(res.order, v)
			}
		}
	}
	allowed := func(v graph.ID) bool { return opts.Allow == nil || opts.Allow(v) }
	noStep := Step{Sym: Symbol{Right: stepNone}}

	// Sorted adjacency comes from the graph's revision-cached snapshot:
	// building it per product state (or even per search) dominates
	// everything else.
	outAdj, inAdj := g.Adjacency()

	for _, v := range starts {
		if !g.Valid(v) {
			continue
		}
		add(v, n.start, selfParent, noStep)
	}
	bud := opts.Budget
	for head := 0; head < len(queue); head++ {
		if bud != nil {
			if err := bud.Charge(1); err != nil {
				res.err = err
				break
			}
		}
		k := queue[head]
		v := graph.ID(int(k) / res.states)
		stIdx := int(k) % res.states
		vSubj := g.IsSubject(v)
		// ε-moves stay on the same vertex.
		for _, e := range n.states[stIdx].eps {
			if e.needSubject && !vSubj {
				continue
			}
			add(v, e.to, k, noStep)
		}
		// Symbol moves traverse edges.
		st := &n.states[stIdx]
		if len(st.syms) == 0 {
			continue
		}
		outs, ins := outAdj[v], inAdj[v]
		for _, tr := range st.syms {
			if tr.sym.Dir == Fwd {
				res.scanned += len(outs)
				for _, h := range outs {
					if !labelFor(h, opts.View).Has(tr.sym.Right) {
						continue
					}
					w := h.Other
					if !allowed(w) || !guardOK(tr.guard, vSubj, g.IsSubject(w)) {
						continue
					}
					add(w, tr.to, k, Step{From: v, To: w, Sym: tr.sym})
				}
			} else {
				res.scanned += len(ins)
				for _, h := range ins {
					if !labelFor(h, opts.View).Has(tr.sym.Right) {
						continue
					}
					w := h.Other
					if !allowed(w) || !guardOK(tr.guard, vSubj, g.IsSubject(w)) {
						continue
					}
					add(w, tr.to, k, Step{From: v, To: w, Sym: tr.sym})
				}
			}
		}
	}
	res.visited = len(queue)
	return res
}

// Visited returns the number of product states (vertex, nfa-state) the
// search enqueued — the |V|·|Q| term of the paper's complexity bounds
// (Corollaries 5.6/5.7), measured rather than assumed.
func (r *Result) Visited() int { return r.visited }

// Scanned returns the number of half-edges examined across all state
// expansions — the |E|·|Q| term of the complexity bounds.
func (r *Result) Scanned() int { return r.scanned }

// Err reports whether the search ran to completion. A non-nil error (a
// budget exhaustion) means the Result covers only the states expanded
// before the abort: Accepted may under-report and must not be read as a
// negative verdict.
func (r *Result) Err() error { return r.err }

func labelFor(h graph.HalfEdge, v View) rights.Set {
	if v == ViewCombined {
		return h.Combined()
	}
	return h.Explicit
}

// Accepted reports whether v is reachable in an accepting state.
func (r *Result) Accepted(v graph.ID) bool {
	_, ok := r.accepts[v]
	return ok
}

// AcceptedVertices returns every accepted vertex in discovery order.
func (r *Result) AcceptedVertices() []graph.ID {
	return append([]graph.ID(nil), r.order...)
}

// Witness returns a path (sequence of steps) from some start vertex to v
// spelling a word of the language, or nil,false if v is not accepted.
// An empty non-nil slice means v itself is a start vertex accepted by the
// empty word.
func (r *Result) Witness(v graph.ID) ([]Step, bool) {
	if r.steps == nil {
		panic("relang: Witness needs a Search run with Options.Trace")
	}
	k, ok := r.accepts[v]
	if !ok {
		return nil, false
	}
	var rev []Step
	for r.parent[k] != selfParent {
		if r.steps[k].Sym.Right != stepNone {
			rev = append(rev, r.steps[k])
		}
		k = r.parent[k]
	}
	steps := make([]Step, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return steps, true
}

// Origin returns the start vertex from which v was accepted.
func (r *Result) Origin(v graph.ID) (graph.ID, bool) {
	k, ok := r.accepts[v]
	if !ok {
		return graph.None, false
	}
	for r.parent[k] != selfParent {
		k = r.parent[k]
	}
	return graph.ID(int(k) / r.states), true
}

// Reaches is a convenience wrapper: does a word of n's language label some
// walk from src to dst?
func Reaches(g *graph.Graph, n *NFA, src, dst graph.ID, opts Options) bool {
	return Search(g, n, []graph.ID{src}, opts).Accepted(dst)
}

// WordOf formats a witness as its associated word, e.g. "t> g> t<".
func WordOf(u *rights.Universe, steps []Step) string {
	if len(steps) == 0 {
		return "ν"
	}
	out := ""
	for i, s := range steps {
		if i > 0 {
			out += " "
		}
		out += s.Sym.Format(u)
	}
	return out
}
