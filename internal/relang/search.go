package relang

import (
	"sync"

	"takegrant/internal/budget"
	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

// View selects which edge labels a search traverses.
type View uint8

const (
	// ViewExplicit traverses only explicit (de jure) labels. Spans and
	// bridges are defined over explicit authority.
	ViewExplicit View = iota
	// ViewCombined traverses the union of explicit and implicit labels.
	// Admissible rw-paths may ride implicit edges added by de facto rules.
	ViewCombined
)

// Options configures a product search.
type Options struct {
	// View selects the traversed labels; default ViewExplicit.
	View View
	// Allow, when non-nil, restricts traversal to vertices it admits.
	// Start vertices are always admitted.
	Allow func(graph.ID) bool
	// Trace records per-state steps so Witness and Origin work. Leave it
	// off for boolean reachability — the searches under CanShare/CanKnow
	// run hot and skip the bookkeeping.
	Trace bool
	// Budget, when non-nil, is charged one unit per product state expanded.
	// When it trips, the search stops where it is and Result.Err reports
	// the exhaustion; the partial Result must not be read as a verdict.
	Budget *budget.Budget
}

// Step is one edge traversal of a witness path.
type Step struct {
	From, To graph.ID // path order: the step leaves From and enters To
	Sym      Symbol
}

// Result holds the reachable product states of a Search and supports
// witness-path extraction.
//
// Internally product states (vertex, nfa-state) are indexed densely as
// vertex*numStates+state: the search is the hot path under every decision
// procedure, and slice-indexed parent tracking beats hashing by a wide
// margin.
type Result struct {
	g      *graph.Graph
	n      *NFA
	states int
	// parent[idx] is the predecessor product index (selfParent for
	// starts); steps[idx] is the edge taken (Sym.Right == stepNone for
	// ε-moves and starts). Both are retained only for Trace searches: the
	// untraced hot path runs on pooled scratch arrays returned to the pool
	// before Search returns.
	parent  []int32
	steps   []Step
	accepts map[graph.ID]int32 // first accepting product index per vertex
	order   []graph.ID         // accepted vertices in discovery order
	visited int                // product states enqueued
	scanned int                // half-edges examined across all expansions
	err     error              // non-nil when a budget aborted the search
}

const (
	selfParent = int32(-2)
	stepNone   = rights.Right(255)
)

// scratch is the reusable per-search working set. Visited marking uses an
// epoch stamp instead of refilling parent with "unvisited" on every call:
// a slot is visited iff stamp[k] == epoch, so starting a search is O(1)
// after the first use at a given size. Pooled via scratchPool — the
// decision procedures run several searches per query and millions per
// benchmark sweep, and the per-call make([]int32, V·Q) was the dominant
// allocation of the whole analysis layer.
type scratch struct {
	parent []int32
	stamp  []uint32
	epoch  uint32
	queue  []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// reset prepares the scratch for a search over size product states.
func (sc *scratch) reset(size int) {
	if cap(sc.parent) < size {
		sc.parent = make([]int32, size)
		sc.stamp = make([]uint32, size)
		sc.epoch = 0
	} else {
		sc.parent = sc.parent[:size]
		sc.stamp = sc.stamp[:size]
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		full := sc.stamp[:cap(sc.stamp)]
		for i := range full {
			full[i] = 0
		}
		sc.epoch = 1
	}
	sc.queue = sc.queue[:0]
}

// Search explores the product of the protection graph with the automaton,
// starting at every vertex in starts (in the automaton's start state), and
// returns the reachable product states. A vertex is "accepted" when some
// path from a start vertex to it spells a word of the language.
//
// The search explores walks: vertices may repeat along a witness. For every
// language in this model that is the intended semantics — the rewriting
// rules that realise a span, bridge or connection are insensitive to
// revisits (see analysis package documentation).
//
// Adjacency comes from the graph's frozen per-revision CSR snapshot
// (graph.Snapshot): concurrent searches share one immutable flat-array
// view instead of each sorting map iterations.
func Search(g *graph.Graph, n *NFA, starts []graph.ID, opts Options) *Result {
	res := &Result{
		g:       g,
		n:       n,
		states:  len(n.states),
		accepts: make(map[graph.ID]int32),
	}
	res.visited, res.scanned, res.err = searchRun(g, n, starts, opts, res, nil)
	return res
}

// SearchVisit is the allocation-free variant of Search for bulk closure
// computation: instead of materializing a Result it streams each accepted
// vertex to visit, in discovery order, exactly once per vertex (the accept
// product state is enqueued at most once). It always runs on pooled
// scratch — Options.Trace is rejected — and returns the visited/scanned
// work counters plus the budget error, if any. On a non-nil error the
// vertices already streamed cover only the states expanded before the
// abort and must not be read as a complete closure.
func SearchVisit(g *graph.Graph, n *NFA, starts []graph.ID, opts Options, visit func(graph.ID)) (visited, scanned int, err error) {
	if opts.Trace {
		panic("relang: SearchVisit does not support Options.Trace")
	}
	return searchRun(g, n, starts, opts, nil, visit)
}

// searchRun is the product-BFS core shared by Search and SearchVisit.
// With res non-nil it records acceptance (and, when tracing, parents and
// steps) on the Result; with res nil it streams accepted vertices to visit
// and leaves no allocation behind beyond pool growth.
func searchRun(g *graph.Graph, n *NFA, starts []graph.ID, opts Options, res *Result, visit func(graph.ID)) (nVisited, nScanned int, err error) {
	snap := g.Snapshot()
	numStates := len(n.states)
	size := snap.Cap() * numStates

	var (
		sc     *scratch
		parent []int32
		stamp  []uint32
		epoch  uint32
		queue  []int32
	)
	if opts.Trace {
		// Traced searches (witness extraction) keep parent/steps alive on
		// the Result, so they get fresh arrays; tracing is the cold path.
		parent = make([]int32, size)
		stamp = make([]uint32, size)
		epoch = 1
		res.parent = parent
		res.steps = make([]Step, size)
		queue = make([]int32, 0, len(starts)*2)
	} else {
		sc = scratchPool.Get().(*scratch)
		sc.reset(size)
		parent, stamp, epoch = sc.parent, sc.stamp, sc.epoch
		queue = sc.queue
	}

	add := func(v graph.ID, st int, par int32, step Step) {
		k := int32(int(v)*numStates + st)
		if stamp[k] == epoch {
			return
		}
		stamp[k] = epoch
		parent[k] = par
		if res != nil && res.steps != nil {
			res.steps[k] = step
		}
		queue = append(queue, k)
		if st == n.accept {
			// The accept product state of v is enqueued at most once, so
			// both sinks see each vertex exactly once.
			if res != nil {
				if _, seen := res.accepts[v]; !seen {
					res.accepts[v] = k
					res.order = append(res.order, v)
				}
			} else if visit != nil {
				visit(v)
			}
		}
	}
	allowed := func(v graph.ID) bool { return opts.Allow == nil || opts.Allow(v) }
	noStep := Step{Sym: Symbol{Right: stepNone}}

	for _, v := range starts {
		if !snap.Live(v) {
			continue
		}
		add(v, n.start, selfParent, noStep)
	}
	bud := opts.Budget
	for head := 0; head < len(queue); head++ {
		if bud != nil {
			if cerr := bud.Charge(1); cerr != nil {
				err = cerr
				break
			}
		}
		k := queue[head]
		v := graph.ID(int(k) / numStates)
		stIdx := int(k) % numStates
		vSubj := snap.IsSubject(v)
		// ε-moves stay on the same vertex.
		for _, e := range n.states[stIdx].eps {
			if e.needSubject && !vSubj {
				continue
			}
			add(v, e.to, k, noStep)
		}
		// Symbol moves traverse edges.
		st := &n.states[stIdx]
		if len(st.syms) == 0 {
			continue
		}
		outDst, outLbl := snap.Out(v)
		inDst, inLbl := snap.In(v)
		for _, tr := range st.syms {
			if tr.sym.Dir == Fwd {
				nScanned += len(outDst)
				for j, w := range outDst {
					if !labelFor(snap.Label(outLbl[j]), opts.View).Has(tr.sym.Right) {
						continue
					}
					if !allowed(w) || !guardOK(tr.guard, vSubj, snap.IsSubject(w)) {
						continue
					}
					add(w, tr.to, k, Step{From: v, To: w, Sym: tr.sym})
				}
			} else {
				nScanned += len(inDst)
				for j, w := range inDst {
					if !labelFor(snap.Label(inLbl[j]), opts.View).Has(tr.sym.Right) {
						continue
					}
					if !allowed(w) || !guardOK(tr.guard, vSubj, snap.IsSubject(w)) {
						continue
					}
					add(w, tr.to, k, Step{From: v, To: w, Sym: tr.sym})
				}
			}
		}
	}
	nVisited = len(queue)
	if sc != nil {
		sc.queue = queue // keep the (possibly grown) backing array
		scratchPool.Put(sc)
	}
	return nVisited, nScanned, err
}

// Visited returns the number of product states (vertex, nfa-state) the
// search enqueued — the |V|·|Q| term of the paper's complexity bounds
// (Corollaries 5.6/5.7), measured rather than assumed.
func (r *Result) Visited() int { return r.visited }

// Scanned returns the number of half-edges examined across all state
// expansions — the |E|·|Q| term of the complexity bounds.
func (r *Result) Scanned() int { return r.scanned }

// Err reports whether the search ran to completion. A non-nil error (a
// budget exhaustion) means the Result covers only the states expanded
// before the abort: Accepted may under-report and must not be read as a
// negative verdict.
func (r *Result) Err() error { return r.err }

func labelFor(l graph.LabelPair, v View) rights.Set {
	if v == ViewCombined {
		return l.Combined()
	}
	return l.Explicit
}

// Accepted reports whether v is reachable in an accepting state.
func (r *Result) Accepted(v graph.ID) bool {
	_, ok := r.accepts[v]
	return ok
}

// AcceptedVertices returns every accepted vertex in discovery order.
func (r *Result) AcceptedVertices() []graph.ID {
	return append([]graph.ID(nil), r.order...)
}

// Witness returns a path (sequence of steps) from some start vertex to v
// spelling a word of the language, or nil,false if v is not accepted.
// An empty non-nil slice means v itself is a start vertex accepted by the
// empty word.
func (r *Result) Witness(v graph.ID) ([]Step, bool) {
	if r.steps == nil {
		panic("relang: Witness needs a Search run with Options.Trace")
	}
	k, ok := r.accepts[v]
	if !ok {
		return nil, false
	}
	var rev []Step
	for r.parent[k] != selfParent {
		if r.steps[k].Sym.Right != stepNone {
			rev = append(rev, r.steps[k])
		}
		k = r.parent[k]
	}
	steps := make([]Step, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return steps, true
}

// Origin returns the start vertex from which v was accepted.
func (r *Result) Origin(v graph.ID) (graph.ID, bool) {
	if r.parent == nil {
		panic("relang: Origin needs a Search run with Options.Trace")
	}
	k, ok := r.accepts[v]
	if !ok {
		return graph.None, false
	}
	for r.parent[k] != selfParent {
		k = r.parent[k]
	}
	return graph.ID(int(k) / r.states), true
}

// Reaches is a convenience wrapper: does a word of n's language label some
// walk from src to dst?
func Reaches(g *graph.Graph, n *NFA, src, dst graph.ID, opts Options) bool {
	return Search(g, n, []graph.ID{src}, opts).Accepted(dst)
}

// WordOf formats a witness as its associated word, e.g. "t> g> t<".
func WordOf(u *rights.Universe, steps []Step) string {
	if len(steps) == 0 {
		return "ν"
	}
	out := ""
	for i, s := range steps {
		if i > 0 {
			out += " "
		}
		out += s.Sym.Format(u)
	}
	return out
}
