package relang

import (
	"testing"

	"takegrant/internal/rights"
)

// Language identities the model's theory relies on, decided mechanically.

func TestBridgeReversalClosed(t *testing.T) {
	// B is closed under path reversal — bridges work from either end.
	if w, ok := FirstDifference(Bridge(), Reverse(Bridge()), 4); !ok {
		t.Errorf("B not reversal-closed; witness %v", w)
	}
}

func TestConnectionNotReversalClosed(t *testing.T) {
	// C is directional: information flows one way along a connection.
	if _, ok := FirstDifference(Connection(), Reverse(Connection()), 4); ok {
		t.Error("C unexpectedly reversal-closed")
	}
}

func TestSpansDisjointFromBridges(t *testing.T) {
	// An initial span (t>*g>) IS a bridge word (t>*g>t<* with empty tail);
	// the terminal span t>+ likewise. Verify the inclusions mechanically:
	// L(initial) ∪ B = B, and (terminal nonempty) ∪ B = B.
	u := rights.NewUniverse()
	unionIB := Alt(InitialSpan(), Bridge())
	if w, ok := FirstDifference(unionIB, Bridge(), 4); !ok {
		t.Errorf("initial span not within B; witness %v", w)
	}
	nonEmptyTerminal := MustParse(u, "t>+")
	unionTB := Alt(nonEmptyTerminal, Bridge())
	if w, ok := FirstDifference(unionTB, Bridge(), 4); !ok {
		t.Errorf("terminal span not within B; witness %v", w)
	}
}

func TestRWSpansWithinConnections(t *testing.T) {
	// t>*r> (the rw-terminal span) is one of C's alternatives.
	unionTC := Alt(RWTerminalSpan(), Connection())
	if w, ok := FirstDifference(unionTC, Connection(), 4); !ok {
		t.Errorf("rw-terminal span not within C; witness %v", w)
	}
	// The rw-initial span t>*w> is NOT in C (it is the reversal of C's
	// w<t<* component).
	unionIC := Alt(RWInitialSpan(), Connection())
	if _, ok := FirstDifference(unionIC, Connection(), 4); ok {
		t.Error("rw-initial span unexpectedly within C")
	}
	// …but its reversal is.
	unionRIC := Alt(Reverse(RWInitialSpan()), Connection())
	if w, ok := FirstDifference(unionRIC, Connection(), 4); !ok {
		t.Errorf("reversed rw-initial span not within C; witness %v", w)
	}
}

func TestBridgeAndConnectionDisjoint(t *testing.T) {
	// B uses only t,g; C requires an r or w — no common words.
	both := func(w []Symbol, at func(int) bool) bool {
		return Bridge().Matches(w, at) && Connection().Matches(w, at)
	}
	words := enumWords(4)
	for _, w := range words {
		if both(w, subjAll) {
			t.Fatalf("common word %v", w)
		}
	}
}

func TestTTNotInBridge(t *testing.T) {
	// The paper's subtle exclusion: t>* t<* (meeting at a sink) is not a
	// bridge — no g to push through. Check a family of such words.
	for pre := 1; pre <= 2; pre++ {
		for suf := 1; suf <= 2; suf++ {
			var w []Symbol
			for i := 0; i < pre; i++ {
				w = append(w, TFwd)
			}
			for i := 0; i < suf; i++ {
				w = append(w, TRev)
			}
			if Bridge().Matches(w, subjAll) {
				t.Errorf("t>^%d t<^%d accepted as bridge", pre, suf)
			}
		}
	}
}

func TestAdmissibleUnguardedEqualsKleene(t *testing.T) {
	// Dropping the guards, the admissible language is exactly (r> ∪ w<)*.
	u := rights.NewUniverse()
	unguarded := MustParse(u, "(r> | w<)*")
	// With every vertex a subject the guards never bite.
	for _, w := range enumWords(3) {
		if Admissible().Matches(w, subjAll) != unguarded.Matches(w, subjAll) {
			t.Fatalf("admissible ≠ (r>|w<)* on all-subject path %v", w)
		}
	}
}

func TestEquivalenceCatchesGuardDifferences(t *testing.T) {
	a := LitG(RFwd, GuardTailSubject)
	b := Lit(RFwd)
	if EquivalentUpTo(a, b, 2) {
		t.Error("guarded and unguarded literals reported equivalent")
	}
}

func TestFirstDifferenceWitness(t *testing.T) {
	u := rights.NewUniverse()
	a := MustParse(u, "t>*")
	b := MustParse(u, "t>* g>")
	w, ok := FirstDifference(a, b, 3)
	if ok {
		t.Fatal("no difference found")
	}
	// The shortest separating word is ν (a accepts the empty word).
	if len(w) != 0 {
		t.Errorf("witness %v, expected the empty word", w)
	}
}
