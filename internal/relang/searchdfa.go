package relang

import (
	"takegrant/internal/graph"
)

// SearchDFA is Search backed by a lazily-determinised automaton. It returns
// the set of accepted vertices (no witness extraction — the DFA collapses
// NFA paths, so witnesses come from the NFA search). Exposed for the
// DFA-vs-NFA ablation benchmark.
func SearchDFA(g *graph.Graph, d *DFA, starts []graph.ID, opts Options) map[graph.ID]bool {
	snap := g.Snapshot()
	type key struct {
		v  graph.ID
		st int
	}
	seen := make(map[key]struct{})
	accepted := make(map[graph.ID]bool)
	queue := make([]key, 0, len(starts))
	add := func(k key) {
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		queue = append(queue, k)
		if d.Accepting(k.st) {
			accepted[k.v] = true
		}
	}
	allowed := func(v graph.ID) bool { return opts.Allow == nil || opts.Allow(v) }
	for _, v := range starts {
		if !snap.Live(v) {
			continue
		}
		add(key{v, d.Start(snap.IsSubject(v))})
	}
	for head := 0; head < len(queue); head++ {
		k := queue[head]
		outDst, outLbl := snap.Out(k.v)
		for j, w := range outDst {
			if !allowed(w) {
				continue
			}
			headSubj := snap.IsSubject(w)
			for _, r := range labelFor(snap.Label(outLbl[j]), opts.View).Rights() {
				if to := d.Move(k.st, Symbol{Right: r, Dir: Fwd}, headSubj); to != dead {
					add(key{w, to})
				}
			}
		}
		inDst, inLbl := snap.In(k.v)
		for j, w := range inDst {
			if !allowed(w) {
				continue
			}
			headSubj := snap.IsSubject(w)
			for _, r := range labelFor(snap.Label(inLbl[j]), opts.View).Rights() {
				if to := d.Move(k.st, Symbol{Right: r, Dir: Rev}, headSubj); to != dead {
					add(key{w, to})
				}
			}
		}
	}
	return accepted
}
