package relang

// EquivalentUpTo reports whether two expressions accept exactly the same
// guarded words up to the given length, enumerating all words over the
// 8-symbol tg/rw alphabet against all vertex-kind assignments. Length 4
// (≈ 65k words × 32 kind masks) decides every identity used in this
// repository — the languages here are all recognised by automata far
// smaller than that horizon.
func EquivalentUpTo(a, b *Expr, maxLen int) bool {
	_, eq := FirstDifference(a, b, maxLen)
	return eq
}

// FirstDifference returns a witness word accepted by exactly one of the
// expressions (with some kind assignment), or ok=true when none exists up
// to maxLen.
func FirstDifference(a, b *Expr, maxLen int) ([]Symbol, bool) {
	alphabet := []Symbol{TFwd, TRev, GFwd, GRev, RFwd, RRev, WFwd, WRev}
	var word []Symbol
	var rec func(depth int) []Symbol
	rec = func(depth int) []Symbol {
		if diff := differsOnKinds(a, b, word); diff {
			w := make([]Symbol, len(word))
			copy(w, word)
			return w
		}
		if depth == maxLen {
			return nil
		}
		for _, s := range alphabet {
			word = append(word, s)
			if w := rec(depth + 1); w != nil {
				word = word[:len(word)-1]
				return w
			}
			word = word[:len(word)-1]
		}
		return nil
	}
	if w := rec(0); w != nil {
		return w, false
	}
	return nil, true
}

// differsOnKinds checks the word against every assignment of vertex kinds
// to its path positions.
func differsOnKinds(a, b *Expr, word []Symbol) bool {
	positions := len(word) + 1
	for mask := 0; mask < 1<<positions; mask++ {
		at := func(i int) bool { return mask&(1<<i) != 0 }
		if a.Matches(word, at) != b.Matches(word, at) {
			return true
		}
	}
	return false
}
