package relang

import (
	"fmt"
	"strings"
	"unicode"

	"takegrant/internal/rights"
)

// Parse reads an expression in the package's text syntax:
//
//	expr   := alt
//	alt    := seq ('|' seq)*
//	seq    := rep rep*
//	rep    := atom ('*' | '+' | '?')*
//	atom   := symbol | 'eps' | 'ε' | '(' expr ')'
//	symbol := rightName ('>' | '<') guard?
//	guard  := '[tail]' | '[head]'
//
// Right names are resolved (and if necessary declared) in the universe.
// Examples: "t>* g>", "t>* | t<* | t>* g> t<* | t>* g< t<*",
// "(r>[tail] | w<[head])*".
func Parse(u *rights.Universe, text string) (*Expr, error) {
	p := &parser{u: u, in: text}
	p.next()
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("relang: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for static language definitions.
func MustParse(u *rights.Universe, text string) *Expr {
	e, err := Parse(u, text)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokSym
	tokEps
	tokLParen
	tokRParen
	tokPipe
	tokStar
	tokPlus
	tokQuest
)

type token struct {
	kind  tokKind
	text  string
	pos   int
	sym   Symbol
	guard Guard
}

type parser struct {
	u   *rights.Universe
	in  string
	pos int
	tok token
	err error
}

func (p *parser) next() {
	for p.pos < len(p.in) && unicode.IsSpace(rune(p.in[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.in) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.in[p.pos]
	switch c {
	case '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "(", pos: start}
		return
	case ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")", pos: start}
		return
	case '|':
		p.pos++
		p.tok = token{kind: tokPipe, text: "|", pos: start}
		return
	case '*':
		p.pos++
		p.tok = token{kind: tokStar, text: "*", pos: start}
		return
	case '+':
		p.pos++
		p.tok = token{kind: tokPlus, text: "+", pos: start}
		return
	case '?':
		p.pos++
		p.tok = token{kind: tokQuest, text: "?", pos: start}
		return
	}
	// ε keyword
	if strings.HasPrefix(p.in[p.pos:], "ε") {
		p.pos += len("ε")
		p.tok = token{kind: tokEps, text: "ε", pos: start}
		return
	}
	// identifier: right name, possibly the keyword eps
	if !isIdentChar(c) {
		p.err = fmt.Errorf("relang: bad character %q at offset %d", c, p.pos)
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	for p.pos < len(p.in) && isIdentChar(p.in[p.pos]) {
		p.pos++
	}
	name := p.in[start:p.pos]
	if name == "eps" {
		p.tok = token{kind: tokEps, text: name, pos: start}
		return
	}
	// direction
	if p.pos >= len(p.in) || (p.in[p.pos] != '>' && p.in[p.pos] != '<') {
		p.err = fmt.Errorf("relang: symbol %q at offset %d lacks direction > or <", name, start)
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	dir := Fwd
	if p.in[p.pos] == '<' {
		dir = Rev
	}
	p.pos++
	guard := GuardNone
	if strings.HasPrefix(p.in[p.pos:], "[tail]") {
		guard = GuardTailSubject
		p.pos += len("[tail]")
	} else if strings.HasPrefix(p.in[p.pos:], "[head]") {
		guard = GuardHeadSubject
		p.pos += len("[head]")
	}
	r, err := p.u.Declare(name)
	if err != nil {
		p.err = err
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	p.tok = token{kind: tokSym, text: name, pos: start, sym: Symbol{Right: r, Dir: dir}, guard: guard}
}

func isIdentChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func (p *parser) alt() (*Expr, error) {
	first, err := p.seq()
	if err != nil {
		return nil, err
	}
	alts := []*Expr{first}
	for p.tok.kind == tokPipe {
		p.next()
		e, err := p.seq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	return Alt(alts...), nil
}

func (p *parser) seq() (*Expr, error) {
	var parts []*Expr
	for {
		switch p.tok.kind {
		case tokSym, tokEps, tokLParen:
			e, err := p.rep()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		default:
			if len(parts) == 0 {
				if p.err != nil {
					return nil, p.err
				}
				return nil, fmt.Errorf("relang: empty expression at offset %d", p.tok.pos)
			}
			return Seq(parts...), nil
		}
	}
}

func (p *parser) rep() (*Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokStar:
			e = Star(e)
			p.next()
		case tokPlus:
			e = Plus(e)
			p.next()
		case tokQuest:
			e = Opt(e)
			p.next()
		default:
			return e, nil
		}
	}
}

func (p *parser) atom() (*Expr, error) {
	switch p.tok.kind {
	case tokSym:
		e := LitG(p.tok.sym, p.tok.guard)
		p.next()
		return e, nil
	case tokEps:
		p.next()
		return Eps(), nil
	case tokLParen:
		p.next()
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("relang: missing ) at offset %d", p.tok.pos)
		}
		p.next()
		return e, nil
	default:
		if p.err != nil {
			return nil, p.err
		}
		return nil, fmt.Errorf("relang: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
}
