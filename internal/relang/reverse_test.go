package relang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func reverseWord(w []Symbol) []Symbol {
	out := make([]Symbol, len(w))
	for i, s := range w {
		out[len(w)-1-i] = reverseSym(s)
	}
	return out
}

func TestReverseSimple(t *testing.T) {
	e := InitialSpan() // t>* g>
	r := Reverse(e)    // g< t<*
	if !r.Matches([]Symbol{GRev}, subjAll) {
		t.Error("reverse rejects g<")
	}
	if !r.Matches([]Symbol{GRev, TRev, TRev}, subjAll) {
		t.Error("reverse rejects g< t< t<")
	}
	if r.Matches([]Symbol{TRev, GRev}, subjAll) {
		t.Error("reverse accepts t< g<")
	}
}

func TestReverseGuardsSwap(t *testing.T) {
	e := LitG(RFwd, GuardTailSubject)
	r := Reverse(e) // r<[head]
	// Reversed path: one step, symbol r<; original tail is now the head.
	if !r.Matches([]Symbol{RRev}, func(i int) bool { return i == 1 }) {
		t.Error("reversed guard should require head subject")
	}
	if r.Matches([]Symbol{RRev}, func(i int) bool { return i == 0 }) {
		t.Error("reversed guard satisfied by tail subject")
	}
}

func TestPropertyReverseMatchesReversedWords(t *testing.T) {
	exprs := []*Expr{Bridge(), Connection(), Admissible(), InitialSpan(), TerminalSpan(), RWInitialSpan()}
	words := enumWords(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := exprs[rng.Intn(len(exprs))]
		r := Reverse(e)
		w := words[rng.Intn(len(words))]
		// kinds assigned to the k+1 vertices of the path
		kinds := make([]bool, len(w)+1)
		for i := range kinds {
			kinds[i] = rng.Intn(2) == 0
		}
		fwdAt := func(i int) bool { return kinds[i] }
		revAt := func(i int) bool { return kinds[len(kinds)-1-i] }
		return e.Matches(w, fwdAt) == r.Matches(reverseWord(w), revAt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestReverseInvolution(t *testing.T) {
	for _, e := range []*Expr{Bridge(), Connection(), Admissible(), InitialSpan()} {
		rr := Reverse(Reverse(e))
		for _, w := range enumWords(3) {
			if e.Matches(w, subjAll) != rr.Matches(w, subjAll) {
				t.Fatalf("double reverse changed language on %v", w)
			}
		}
	}
}
