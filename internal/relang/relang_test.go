package relang

import (
	"math/rand"
	"testing"
	"testing/quick"

	"takegrant/internal/graph"
	"takegrant/internal/rights"
)

func subjAll(int) bool  { return true }
func subjNone(int) bool { return false }

func TestMatchesBasics(t *testing.T) {
	u := rights.NewUniverse()
	e := MustParse(u, "t>* g>")
	cases := []struct {
		word []Symbol
		want bool
	}{
		{[]Symbol{GFwd}, true},
		{[]Symbol{TFwd, GFwd}, true},
		{[]Symbol{TFwd, TFwd, TFwd, GFwd}, true},
		{[]Symbol{TFwd}, false},
		{[]Symbol{GFwd, TFwd}, false},
		{[]Symbol{TRev, GFwd}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := e.Matches(c.word, subjAll); got != c.want {
			t.Errorf("t>*g> match %v = %v want %v", c.word, got, c.want)
		}
	}
}

func TestMatchesEpsilonAndOperators(t *testing.T) {
	u := rights.NewUniverse()
	if !MustParse(u, "eps").Matches(nil, subjAll) {
		t.Error("eps rejects empty word")
	}
	if MustParse(u, "eps").Matches([]Symbol{TFwd}, subjAll) {
		t.Error("eps accepts t>")
	}
	plus := MustParse(u, "t>+")
	if plus.Matches(nil, subjAll) || !plus.Matches([]Symbol{TFwd}, subjAll) || !plus.Matches([]Symbol{TFwd, TFwd}, subjAll) {
		t.Error("t>+ wrong")
	}
	opt := MustParse(u, "g<?")
	if !opt.Matches(nil, subjAll) || !opt.Matches([]Symbol{GRev}, subjAll) || opt.Matches([]Symbol{GRev, GRev}, subjAll) {
		t.Error("g<? wrong")
	}
}

func TestBridgeLanguage(t *testing.T) {
	b := Bridge()
	accept := [][]Symbol{
		{TFwd}, {TFwd, TFwd}, {TRev}, {TRev, TRev},
		{GFwd}, {GRev},
		{TFwd, GFwd, TRev}, {TFwd, TFwd, GFwd}, {GRev, TRev},
		{TFwd, GRev, TRev, TRev},
	}
	reject := [][]Symbol{
		nil,
		{TFwd, TRev},             // t>*t<* without g is NOT a bridge
		{TRev, TFwd},             // wrong order
		{GFwd, GFwd},             // two grants
		{RFwd},                   // read is not a tg symbol
		{TFwd, GFwd, TRev, GFwd}, // trailing grant
		{TRev, GFwd},             // t< before g>
	}
	for _, w := range accept {
		if !b.Matches(w, subjAll) {
			t.Errorf("bridge rejects %v", w)
		}
	}
	for _, w := range reject {
		if b.Matches(w, subjAll) {
			t.Errorf("bridge accepts %v", w)
		}
	}
}

func TestConnectionLanguage(t *testing.T) {
	c := Connection()
	accept := [][]Symbol{
		{RFwd}, {TFwd, RFwd}, {WRev}, {WRev, TRev},
		{RFwd, WRev}, {TFwd, RFwd, WRev, TRev},
	}
	reject := [][]Symbol{
		nil, {TFwd}, {WFwd}, {RRev}, {RFwd, RFwd}, {WRev, RFwd},
	}
	for _, w := range accept {
		if !c.Matches(w, subjAll) {
			t.Errorf("connection rejects %v", w)
		}
	}
	for _, w := range reject {
		if c.Matches(w, subjAll) {
			t.Errorf("connection accepts %v", w)
		}
	}
}

func TestAdmissibleGuards(t *testing.T) {
	a := Admissible()
	// r> requires the tail (reader) to be a subject.
	word := []Symbol{RFwd}
	if !a.Matches(word, subjAll) {
		t.Error("admissible rejects subject read")
	}
	if a.Matches(word, subjNone) {
		t.Error("admissible accepts object read")
	}
	// w< requires the head (writer) to be a subject.
	word = []Symbol{WRev}
	if !a.Matches(word, func(i int) bool { return i == 1 }) {
		t.Error("admissible rejects subject writer")
	}
	if a.Matches(word, func(i int) bool { return i == 0 }) {
		t.Error("admissible accepts object writer")
	}
	// No two consecutive objects: subject,object,subject alternation works.
	word = []Symbol{RFwd, WRev}
	alternating := func(i int) bool { return i != 1 }
	if !a.Matches(word, alternating) {
		t.Error("admissible rejects s-o-s path")
	}
	// object in reading position breaks it
	if a.Matches(word, func(i int) bool { return i == 2 }) {
		t.Error("admissible accepts o-o-s path")
	}
}

func TestParseErrors(t *testing.T) {
	u := rights.NewUniverse()
	for _, bad := range []string{"", "t", "t>)", "(t>", "t> | ", "*", "¶", "t>[tails]x"} {
		if _, err := Parse(u, bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseGuards(t *testing.T) {
	u := rights.NewUniverse()
	e := MustParse(u, "(r>[tail] | w<[head])*")
	if !e.Matches([]Symbol{RFwd}, subjAll) {
		t.Error("guarded parse broken")
	}
	if e.Matches([]Symbol{RFwd}, subjNone) {
		t.Error("parsed [tail] guard not applied")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	u := rights.NewUniverse()
	for _, src := range []string{"t>* g>", "t>+ | t<*", "(r>[tail] | w<[head])*", "t>* g< t<*", "eps | g>"} {
		e := MustParse(u, src)
		text := e.Format(u)
		e2, err := Parse(u, text)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", text, src, err)
		}
		// Compare languages on a sample of short words.
		words := enumWords(3)
		for _, w := range words {
			if e.Matches(w, subjAll) != e2.Matches(w, subjAll) {
				t.Errorf("round trip of %q changed language on %v", src, w)
			}
		}
	}
}

// enumWords enumerates all words up to the given length over the 8-symbol
// tg/rw alphabet.
func enumWords(maxLen int) [][]Symbol {
	alpha := []Symbol{TFwd, TRev, GFwd, GRev, RFwd, RRev, WFwd, WRev}
	words := [][]Symbol{nil}
	prev := [][]Symbol{nil}
	for l := 1; l <= maxLen; l++ {
		var next [][]Symbol
		for _, w := range prev {
			for _, s := range alpha {
				nw := append(append([]Symbol(nil), w...), s)
				next = append(next, nw)
			}
		}
		words = append(words, next...)
		prev = next
	}
	return words
}

// lineGraph builds a path graph v0 - v1 - … - vk whose step i carries the
// word's symbol (edge direction per Dir), with vertex kinds from subjectAt.
func lineGraph(t *testing.T, word []Symbol, subjectAt func(int) bool) (*graph.Graph, graph.ID, graph.ID) {
	t.Helper()
	g := graph.New(nil)
	ids := make([]graph.ID, len(word)+1)
	for i := range ids {
		name := "v" + string(rune('a'+i))
		if subjectAt(i) {
			ids[i] = g.MustSubject(name)
		} else {
			ids[i] = g.MustObject(name)
		}
	}
	for i, s := range word {
		set := rights.Of(s.Right)
		if s.Dir == Fwd {
			g.AddExplicit(ids[i], ids[i+1], set)
		} else {
			g.AddExplicit(ids[i+1], ids[i], set)
		}
	}
	return g, ids[0], ids[len(ids)-1]
}

func TestSearchAgreesWithMatchesOnLines(t *testing.T) {
	// On a pure line graph, Search accepts the endpoint iff the word is in
	// the language (words short enough that no shortcut exists).
	exprs := map[string]*Expr{
		"bridge":     Bridge(),
		"connection": Connection(),
		"admissible": Admissible(),
		"initial":    InitialSpan(),
		"terminal":   TerminalSpan(),
		"rwinitial":  RWInitialSpan(),
		"rwterminal": RWTerminalSpan(),
	}
	kindPatterns := []func(int) bool{
		subjAll,
		func(i int) bool { return i%2 == 0 },
		func(i int) bool { return i%2 == 1 },
	}
	for name, e := range exprs {
		nfa := Compile(e)
		for _, word := range enumWords(3) {
			if len(word) == 0 {
				continue
			}
			for _, kinds := range kindPatterns {
				g, src, dst := lineGraph(t, word, kinds)
				got := Reaches(g, nfa, src, dst, Options{View: ViewExplicit})
				want := e.Matches(word, kinds)
				if got != want {
					t.Fatalf("%s: word %v kinds: search=%v matches=%v\n%s", name, word, got, want, g.String())
				}
			}
		}
	}
}

func TestSearchWitness(t *testing.T) {
	// p -t-> o1 -g-> o2 <-t- q : bridge word t> g> t<
	g := graph.New(nil)
	p := g.MustSubject("p")
	o1 := g.MustObject("o1")
	o2 := g.MustObject("o2")
	q := g.MustSubject("q")
	g.AddExplicit(p, o1, rights.T)
	g.AddExplicit(o1, o2, rights.G)
	g.AddExplicit(q, o2, rights.T)
	res := Search(g, Compile(Bridge()), []graph.ID{p}, Options{Trace: true})
	if !res.Accepted(q) {
		t.Fatal("bridge p→q not found")
	}
	steps, ok := res.Witness(q)
	if !ok || len(steps) != 3 {
		t.Fatalf("witness = %v,%v", steps, ok)
	}
	if WordOf(g.Universe(), steps) != "t> g> t<" {
		t.Errorf("witness word = %q", WordOf(g.Universe(), steps))
	}
	// Steps must follow real edges.
	for _, s := range steps {
		var lbl rights.Set
		if s.Sym.Dir == Fwd {
			lbl = g.Explicit(s.From, s.To)
		} else {
			lbl = g.Explicit(s.To, s.From)
		}
		if !lbl.Has(s.Sym.Right) {
			t.Errorf("witness step %v not backed by an edge", s)
		}
	}
	if origin, ok := res.Origin(q); !ok || origin != p {
		t.Errorf("origin = %v,%v", origin, ok)
	}
}

func TestNoBridgeOverTT(t *testing.T) {
	// p -t-> o <-t- q : NOT a bridge (t>t< is not in B).
	g := graph.New(nil)
	p := g.MustSubject("p")
	o := g.MustObject("o")
	q := g.MustSubject("q")
	g.AddExplicit(p, o, rights.T)
	g.AddExplicit(q, o, rights.T)
	if Reaches(g, Compile(Bridge()), p, q, Options{}) {
		t.Error("t> t< accepted as bridge")
	}
}

func TestSubjectIterationChain(t *testing.T) {
	// p -t-> s -t-> q with s a subject: two chained bridges.
	g := graph.New(nil)
	p := g.MustSubject("p")
	s := g.MustSubject("s")
	q := g.MustSubject("q")
	g.AddExplicit(p, s, rights.T)
	g.AddExplicit(s, q, rights.T)
	chain := BridgeChain()
	if !Reaches(g, chain, p, q, Options{}) {
		t.Error("bridge chain through subject not found")
	}
	// Also accepted as a single bridge t>t>; now break the middle into an
	// object and use words that do NOT concatenate into one bridge:
	// p -t-> o (g> to s), s subject, s -t-> o2 (g> to q)…
	g2 := graph.New(nil)
	p2 := g2.MustSubject("p")
	a := g2.MustObject("a")
	m := g2.MustSubject("m")
	b := g2.MustObject("b")
	q2 := g2.MustSubject("q")
	g2.AddExplicit(p2, a, rights.T)
	g2.AddExplicit(a, m, rights.G) // bridge 1: t> g>
	g2.AddExplicit(m, b, rights.T)
	g2.AddExplicit(b, q2, rights.G) // bridge 2: t> g>
	if !Reaches(g2, BridgeChain(), p2, q2, Options{}) {
		t.Error("two-bridge chain via subject m not found")
	}
	// Single bridge cannot cover it: word t>g>t>g> ∉ B.
	if Reaches(g2, Compile(Bridge()), p2, q2, Options{}) {
		t.Error("t>g>t>g> accepted as single bridge")
	}
	// If the joint is an object the chain must fail.
	g3 := graph.New(nil)
	p3 := g3.MustSubject("p")
	a3 := g3.MustObject("a")
	m3 := g3.MustObject("m") // object joint
	b3 := g3.MustObject("b")
	q3 := g3.MustSubject("q")
	g3.AddExplicit(p3, a3, rights.T)
	g3.AddExplicit(a3, m3, rights.G)
	g3.AddExplicit(m3, b3, rights.T)
	g3.AddExplicit(b3, q3, rights.G)
	if Reaches(g3, BridgeChain(), p3, q3, Options{}) {
		t.Error("bridge chain iterated at an object joint")
	}
}

func TestEmptyChainAcceptsStart(t *testing.T) {
	g := graph.New(nil)
	p := g.MustSubject("p")
	res := Search(g, BridgeChain(), []graph.ID{p}, Options{Trace: true})
	if !res.Accepted(p) {
		t.Error("empty bridge chain does not accept the start vertex")
	}
	steps, ok := res.Witness(p)
	if !ok || len(steps) != 0 {
		t.Errorf("empty-chain witness = %v,%v", steps, ok)
	}
}

func TestViewCombinedUsesImplicit(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	g.AddImplicit(x, y, rights.R)
	nfa := Compile(Admissible())
	if Reaches(g, nfa, x, y, Options{View: ViewExplicit}) {
		t.Error("explicit view used implicit edge")
	}
	if !Reaches(g, nfa, x, y, Options{View: ViewCombined}) {
		t.Error("combined view ignored implicit edge")
	}
}

func TestAllowFilter(t *testing.T) {
	g := graph.New(nil)
	x := g.MustSubject("x")
	m := g.MustSubject("m")
	y := g.MustSubject("y")
	g.AddExplicit(x, m, rights.T)
	g.AddExplicit(m, y, rights.T)
	nfa := Compile(TerminalSpan())
	if !Reaches(g, nfa, x, y, Options{}) {
		t.Fatal("baseline reach failed")
	}
	blocked := Options{Allow: func(v graph.ID) bool { return v != m }}
	if Reaches(g, nfa, x, y, blocked) {
		t.Error("Allow filter not applied")
	}
}

func randomTestGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New(nil)
	n := 3 + rng.Intn(7)
	for i := 0; i < n; i++ {
		name := "v" + string(rune('a'+i))
		if rng.Intn(2) == 0 {
			g.MustSubject(name)
		} else {
			g.MustObject(name)
		}
	}
	vs := g.Vertices()
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a == b {
			continue
		}
		g.AddExplicit(a, b, rights.Set(1+rng.Intn(15)))
	}
	return g
}

func TestPropertyDFAAgreesWithNFA(t *testing.T) {
	exprs := []*Expr{Bridge(), Connection(), Admissible(), InitialSpan(), RWTerminalSpan()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTestGraph(rng)
		vs := g.Vertices()
		src := vs[rng.Intn(len(vs))]
		e := exprs[rng.Intn(len(exprs))]
		nfa := Compile(e)
		dfa := Determinize(nfa)
		nres := Search(g, nfa, []graph.ID{src}, Options{})
		dres := SearchDFA(g, dfa, []graph.ID{src}, Options{})
		for _, v := range vs {
			if nres.Accepted(v) != dres[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWitnessWordInLanguage(t *testing.T) {
	// Every witness returned by Search must spell a word the reference
	// matcher accepts, with the witness path's actual vertex kinds.
	exprs := []*Expr{Bridge(), Connection(), InitialSpan(), TerminalSpan()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTestGraph(rng)
		vs := g.Vertices()
		src := vs[rng.Intn(len(vs))]
		e := exprs[rng.Intn(len(exprs))]
		res := Search(g, Compile(e), []graph.ID{src}, Options{Trace: true})
		for _, v := range res.AcceptedVertices() {
			steps, ok := res.Witness(v)
			if !ok {
				return false
			}
			word := make([]Symbol, len(steps))
			verts := []graph.ID{src}
			for i, s := range steps {
				word[i] = s.Sym
				verts = append(verts, s.To)
			}
			if len(steps) > 0 && steps[len(steps)-1].To != v {
				return false
			}
			subjectAt := func(i int) bool { return g.IsSubject(verts[i]) }
			if !e.Matches(word, subjectAt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestWithSubjectIterationPreservesBase(t *testing.T) {
	base := Compile(Bridge())
	chain := base.WithSubjectIteration()
	if base.NumStates() >= chain.NumStates() {
		t.Error("iteration did not add states")
	}
	g := graph.New(nil)
	p := g.MustSubject("p")
	q := g.MustSubject("q")
	g.AddExplicit(p, q, rights.T)
	if !Reaches(g, chain, p, q, Options{}) {
		t.Error("chain lost single-bridge words")
	}
}
