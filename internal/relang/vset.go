package relang

import (
	"sync"

	"takegrant/internal/graph"
)

// VertexSet is a reusable epoch-stamped membership set over vertex IDs —
// the same idiom as the product-search scratch (search.go): a slot is a
// member iff stamp[v] == epoch, so clearing the set for reuse is a single
// epoch bump instead of a zeroing pass. Unlike the search scratch it is a
// standalone exported value: long-lived derived indexes keep closure rows
// in VertexSets drawn from the shared pool and return them when a row is
// invalidated, so steady-state row rebuilds allocate nothing.
//
// A VertexSet is not safe for concurrent mutation; once a holder stops
// calling Add, any number of readers may call Has concurrently (the same
// publish-then-read contract as the rest of the read path).
type VertexSet struct {
	stamp []uint32
	epoch uint32
	n     int
}

// Reset prepares the set to hold IDs < size, emptying it in O(1) by
// bumping the epoch (the stamp array is zeroed only on allocation growth
// or epoch wrap-around).
func (s *VertexSet) Reset(size int) {
	if cap(s.stamp) < size {
		s.stamp = make([]uint32, size)
		s.epoch = 0
	} else {
		s.stamp = s.stamp[:size]
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		full := s.stamp[:cap(s.stamp)]
		for i := range full {
			full[i] = 0
		}
		s.epoch = 1
	}
	s.n = 0
}

// Add marks v as a member and reports whether it was new. IDs outside
// [0, size) are ignored (and reported as not new).
func (s *VertexSet) Add(v graph.ID) bool {
	if v < 0 || int(v) >= len(s.stamp) {
		return false
	}
	if s.stamp[v] == s.epoch {
		return false
	}
	s.stamp[v] = s.epoch
	s.n++
	return true
}

// Has reports membership. IDs outside the Reset size are never members —
// in particular, vertices created after the set was built read as absent.
func (s *VertexSet) Has(v graph.ID) bool {
	return v >= 0 && int(v) < len(s.stamp) && s.stamp[v] == s.epoch
}

// Len returns the number of members.
func (s *VertexSet) Len() int { return s.n }

var vsetPool = sync.Pool{New: func() any { return new(VertexSet) }}

// GetVertexSet draws an empty set sized for IDs < size from the shared
// pool.
func GetVertexSet(size int) *VertexSet {
	s := vsetPool.Get().(*VertexSet)
	s.Reset(size)
	return s
}

// PutVertexSet returns a set to the pool. The caller must not retain any
// reference — a pooled set's next Reset invalidates its contents.
func PutVertexSet(s *VertexSet) {
	if s != nil {
		vsetPool.Put(s)
	}
}
