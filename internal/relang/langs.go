package relang

// Standard languages of the Take-Grant model, built programmatically so they
// carry the correct guards. All are defined over the distinguished rights
// and therefore valid in any universe.
//
// Conventions: every expression reads its word from the path's first vertex
// (the spanning / bridging / knowing vertex) toward its last. The empty
// word ν (x′ = x cases) is handled by the analysis package, not here —
// except where the paper's language itself contains ν.

// InitialSpan is the de jure initial-span language t>* g>.
// A subject x′ initially spans to x when it can *push* authority to x:
// x′ takes along the t-chain and finally holds a grant edge to x.
// (The paper's definition also admits ν; callers treat x′ = x separately.)
func InitialSpan() *Expr {
	return Seq(Star(Lit(TFwd)), Lit(GFwd))
}

// TerminalSpan is the de jure terminal-span language t>*.
// A subject s′ terminally spans to s when it can *pull* (take) authority
// from s through a chain of take edges. ν (s′ = s) is handled by callers.
func TerminalSpan() *Expr {
	return Star(Lit(TFwd))
}

// Bridge is the language B = t>* ∪ t<* ∪ t>* g> t<* ∪ t>* g< t<* of
// tg-paths between two subjects across which authority can be transferred
// in both directions (with the endpoints' cooperation and use of create).
func Bridge() *Expr {
	return Alt(
		Plus(Lit(TFwd)),
		Plus(Lit(TRev)),
		Seq(Star(Lit(TFwd)), Lit(GFwd), Star(Lit(TRev))),
		Seq(Star(Lit(TFwd)), Lit(GRev), Star(Lit(TRev))),
	)
}

// RWInitialSpan is the language t>* w> : a subject u rw-initially spans to
// x when u can write information to x.
func RWInitialSpan() *Expr {
	return Seq(Star(Lit(TFwd)), Lit(WFwd))
}

// RWTerminalSpan is the language t>* r> : a subject u rw-terminally spans
// to y when u can read y's information.
func RWTerminalSpan() *Expr {
	return Seq(Star(Lit(TFwd)), Lit(RFwd))
}

// Connection is the language C = t>* r> ∪ w< t<* ∪ t>* r> w< t<* of
// rwtg-paths between two subjects u, v along which information flows from
// v to u *without* any authority crossing:
//
//	t>* r>       u acquires read over v (or over something v writes into);
//	w< t<*       v acquires write toward u;
//	t>* r> w< t<*  u reads a common vertex that v writes.
func Connection() *Expr {
	return Alt(
		Seq(Star(Lit(TFwd)), Lit(RFwd)),
		Seq(Lit(WRev), Star(Lit(TRev))),
		Seq(Star(Lit(TFwd)), Lit(RFwd), Lit(WRev), Star(Lit(TRev))),
	)
}

// BridgeOrConnection is B ∪ C, the link language of Theorem 3.2(c).
func BridgeOrConnection() *Expr {
	return Alt(Bridge(), Connection())
}

// Admissible is the admissible rw-path language of Theorem 3.1:
// (r> ∪ w<)* where every r> step leaves a subject (the reader acts) and
// every w< step enters from a subject (the writer acts). Searched under
// ViewCombined so implicit read edges participate.
//
// Reading the word from x to y, information flows from y back to x.
func Admissible() *Expr {
	return Star(Alt(
		LitG(RFwd, GuardTailSubject),
		LitG(WRev, GuardHeadSubject),
	))
}

// AdmissibleStep is a single admissible step; the rw-level machinery builds
// its step relation from it.
func AdmissibleStep() *Expr {
	return Alt(
		LitG(RFwd, GuardTailSubject),
		LitG(WRev, GuardHeadSubject),
	)
}

// BridgeChain is (B at-subject-boundaries)*, including the empty chain:
// the iterated-bridge reachability used by can•share's island hopping.
func BridgeChain() *NFA {
	return Compile(Bridge()).WithSubjectIteration()
}

// LinkChain is ((B ∪ C) at-subject-boundaries)*, including the empty
// chain: the iterated link reachability of Theorem 3.2 condition (c).
func LinkChain() *NFA {
	return Compile(BridgeOrConnection()).WithSubjectIteration()
}
