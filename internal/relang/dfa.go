package relang

import (
	"fmt"
	"sort"
	"strings"
)

// DFA is a guard-aware determinisation of an NFA, built lazily as product
// searches demand transitions. Because ε-closures and guards depend on
// vertex kinds, a DFA state is a closed NFA-state set *relative to the kind
// of the vertex it sits on*, and transitions are keyed by (symbol, head
// kind). The benchmark suite compares DFA-backed search against NFA-backed
// search (ablation: see DESIGN.md §5).
type DFA struct {
	n *NFA
	// states[i] holds the sorted NFA-state set of DFA state i.
	states []dfaState
	// index maps a canonical set encoding (plus kind bit) to a DFA state.
	index map[string]int
	// startFor[kindBit] is the start state for a vertex of that kind.
	startFor [2]int
}

type dfaState struct {
	set       []int
	subject   bool // the vertex kind this closure was computed for
	accepting bool
	// trans memoises moves: key packs symbol and head kind.
	trans map[dfaMoveKey]int
}

type dfaMoveKey struct {
	sym         Symbol
	headSubject bool
}

// Determinize prepares a lazy DFA for the NFA.
func Determinize(n *NFA) *DFA {
	d := &DFA{n: n, index: make(map[string]int)}
	for _, subj := range []bool{false, true} {
		set := n.closure(map[int]struct{}{n.start: {}}, subj)
		d.startFor[kindBit(subj)] = d.intern(set, subj)
	}
	return d
}

func kindBit(subject bool) int {
	if subject {
		return 1
	}
	return 0
}

func (d *DFA) intern(set map[int]struct{}, subject bool) int {
	ids := make([]int, 0, len(set))
	for s := range set {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	var b strings.Builder
	if subject {
		b.WriteByte('s')
	} else {
		b.WriteByte('o')
	}
	for _, id := range ids {
		fmt.Fprintf(&b, ",%d", id)
	}
	key := b.String()
	if i, ok := d.index[key]; ok {
		return i
	}
	accepting := false
	if _, ok := set[d.n.accept]; ok {
		accepting = true
	}
	d.states = append(d.states, dfaState{
		set:       ids,
		subject:   subject,
		accepting: accepting,
		trans:     make(map[dfaMoveKey]int),
	})
	d.index[key] = len(d.states) - 1
	return len(d.states) - 1
}

// Start returns the DFA start state for a vertex of the given kind.
func (d *DFA) Start(subject bool) int { return d.startFor[kindBit(subject)] }

// Accepting reports whether DFA state i is accepting.
func (d *DFA) Accepting(i int) bool { return d.states[i].accepting }

// NumStates returns the number of DFA states materialised so far.
func (d *DFA) NumStates() int { return len(d.states) }

// dead is the sentinel for "no successor".
const dead = -1

// Move computes (and memoises) the successor of state i on symbol sym when
// stepping onto a vertex of kind headSubject. The tail kind is implied by
// the state itself. Returns dead when the language rejects.
func (d *DFA) Move(i int, sym Symbol, headSubject bool) int {
	st := &d.states[i]
	key := dfaMoveKey{sym: sym, headSubject: headSubject}
	if to, ok := st.trans[key]; ok {
		return to
	}
	next := make(map[int]struct{})
	for _, ns := range st.set {
		for _, tr := range d.n.states[ns].syms {
			if tr.sym != sym {
				continue
			}
			if !guardOK(tr.guard, st.subject, headSubject) {
				continue
			}
			next[tr.to] = struct{}{}
		}
	}
	to := dead
	if len(next) > 0 {
		closed := d.n.closure(next, headSubject)
		to = d.intern(closed, headSubject)
		st = &d.states[i] // intern may have grown the slice
	}
	st.trans[key] = to
	return to
}
