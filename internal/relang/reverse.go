package relang

// Reverse returns an expression matching exactly the reversals of the words
// of e, as read along the reversed path. Each symbol's direction flips
// (a step traversed backwards sees the edge pointing the other way) and
// tail/head guards swap (the step's endpoints exchange roles).
//
// Reverse lets "which vertices span to x?" queries run as a single search
// *from* x: v initially spans to x with word in t>*g> iff x reaches v along
// the reversed language g<t<*.
func Reverse(e *Expr) *Expr {
	switch e.op {
	case opEps:
		return Eps()
	case opLit:
		return LitG(reverseSym(e.sym), reverseGuard(e.guard))
	case opSeq:
		rev := make([]*Expr, len(e.children))
		for i, c := range e.children {
			rev[len(e.children)-1-i] = Reverse(c)
		}
		return Seq(rev...)
	case opAlt:
		alts := make([]*Expr, len(e.children))
		for i, c := range e.children {
			alts[i] = Reverse(c)
		}
		return Alt(alts...)
	case opStar:
		return Star(Reverse(e.children[0]))
	default:
		panic("relang: unknown expr op in Reverse")
	}
}

func reverseSym(s Symbol) Symbol {
	if s.Dir == Fwd {
		s.Dir = Rev
	} else {
		s.Dir = Fwd
	}
	return s
}

func reverseGuard(g Guard) Guard {
	switch g {
	case GuardTailSubject:
		return GuardHeadSubject
	case GuardHeadSubject:
		return GuardTailSubject
	default:
		return g
	}
}
