package relang

import (
	"testing"

	"takegrant/internal/rights"
)

// FuzzExprParse checks the path-expression parser never panics and that
// accepted expressions survive a format/parse round trip with the same
// language on short words.
func FuzzExprParse(f *testing.F) {
	f.Add("t>* g>")
	f.Add("t>+ | t<* | (r>[tail] | w<[head])*")
	f.Add("eps | g<?")
	f.Add("((t>)*)*")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 200 {
			return // bound nesting work
		}
		u := rights.NewUniverse()
		e, err := Parse(u, src)
		if err != nil {
			return
		}
		text := e.Format(u)
		e2, err := Parse(u, text)
		if err != nil {
			t.Fatalf("formatted expression %q does not re-parse: %v", text, err)
		}
		for _, w := range enumWords(2) {
			if e.Matches(w, subjAll) != e2.Matches(w, subjAll) {
				t.Fatalf("round trip changed language of %q on %v", src, w)
			}
		}
	})
}
