package relang

import (
	"fmt"
	"strings"

	"takegrant/internal/rights"
)

// symTrans is a symbol-consuming NFA transition.
type symTrans struct {
	sym   Symbol
	guard Guard
	to    int
}

// epsTrans is an ε-transition, optionally guarded on the current vertex
// being a subject.
type epsTrans struct {
	needSubject bool
	to          int
}

type nfaState struct {
	syms []symTrans
	eps  []epsTrans
}

// NFA is a nondeterministic finite automaton over guarded symbols, produced
// by Compile. It has a single start and a single accept state.
type NFA struct {
	states []nfaState
	start  int
	accept int
}

// Compile builds an NFA from an expression via the Thompson construction.
func Compile(e *Expr) *NFA {
	n := &NFA{}
	start, accept := n.build(e)
	n.start, n.accept = start, accept
	return n
}

func (n *NFA) newState() int {
	n.states = append(n.states, nfaState{})
	return len(n.states) - 1
}

func (n *NFA) addEps(from, to int, needSubject bool) {
	n.states[from].eps = append(n.states[from].eps, epsTrans{needSubject: needSubject, to: to})
}

func (n *NFA) build(e *Expr) (start, accept int) {
	switch e.op {
	case opEps:
		s := n.newState()
		a := n.newState()
		n.addEps(s, a, false)
		return s, a
	case opLit:
		s := n.newState()
		a := n.newState()
		n.states[s].syms = append(n.states[s].syms, symTrans{sym: e.sym, guard: e.guard, to: a})
		return s, a
	case opSeq:
		start, accept = n.build(e.children[0])
		for _, c := range e.children[1:] {
			s2, a2 := n.build(c)
			n.addEps(accept, s2, false)
			accept = a2
		}
		return start, accept
	case opAlt:
		s := n.newState()
		a := n.newState()
		for _, c := range e.children {
			cs, ca := n.build(c)
			n.addEps(s, cs, false)
			n.addEps(ca, a, false)
		}
		return s, a
	case opStar:
		s := n.newState()
		a := n.newState()
		cs, ca := n.build(e.children[0])
		n.addEps(s, cs, false)
		n.addEps(s, a, false)
		n.addEps(ca, cs, false)
		n.addEps(ca, a, false)
		return s, a
	default:
		panic(fmt.Sprintf("relang: unknown expr op %d", e.op))
	}
}

// WithSubjectIteration returns a copy of the automaton recognising L · (L at
// subject boundaries)*: an ε-loop from accept back to start that may only be
// taken while standing on a subject vertex, plus acceptance of the empty
// word from the start. It turns a bridge automaton into a
// bridge-chain automaton whose iteration points are the intermediate
// subjects u1,…,un of Theorem 3.2.
func (n *NFA) WithSubjectIteration() *NFA {
	c := n.clone()
	c.addEps(c.accept, c.start, true)
	newStart := c.newState()
	newAccept := c.newState()
	c.addEps(newStart, c.start, false)
	c.addEps(newStart, newAccept, false) // empty chain
	c.addEps(c.accept, newAccept, false)
	c.start, c.accept = newStart, newAccept
	return c
}

func (n *NFA) clone() *NFA {
	c := &NFA{states: make([]nfaState, len(n.states)), start: n.start, accept: n.accept}
	for i, st := range n.states {
		c.states[i].syms = append([]symTrans(nil), st.syms...)
		c.states[i].eps = append([]epsTrans(nil), st.eps...)
	}
	return c
}

// NumStates returns the number of NFA states (for benchmarks and tests).
func (n *NFA) NumStates() int { return len(n.states) }

// closure returns the ε-closure of the given state set, taking guarded
// ε-transitions only when subjectHere holds.
func (n *NFA) closure(set map[int]struct{}, subjectHere bool) map[int]struct{} {
	out := make(map[int]struct{}, len(set))
	var stack []int
	for s := range set {
		out[s] = struct{}{}
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.states[s].eps {
			if e.needSubject && !subjectHere {
				continue
			}
			if _, seen := out[e.to]; !seen {
				out[e.to] = struct{}{}
				stack = append(stack, e.to)
			}
		}
	}
	return out
}

// String renders the automaton's transition table for debugging.
func (n *NFA) String() string {
	u := rights.NewUniverse()
	var b strings.Builder
	fmt.Fprintf(&b, "start=%d accept=%d\n", n.start, n.accept)
	for i, st := range n.states {
		for _, tr := range st.syms {
			fmt.Fprintf(&b, "  %d -%s%s-> %d\n", i, tr.sym.Format(u), tr.guard, tr.to)
		}
		for _, e := range st.eps {
			g := ""
			if e.needSubject {
				g = "[•]"
			}
			fmt.Fprintf(&b, "  %d -ε%s-> %d\n", i, g, e.to)
		}
	}
	return b.String()
}
