// Package rights represents the finite set R of access rights that label the
// edges of a Take-Grant protection graph.
//
// The model fixes four distinguished rights — read (r), write (w), take (t)
// and grant (g) — whose semantics are built into the de jure and de facto
// rewriting rules. Systems may declare additional, uninterpreted rights
// (the paper's example is e, the right to execute a file); the rewriting
// rules move such rights around but never give them any behaviour.
//
// A Set is a bitmask over a Universe. Sets are small values and are passed
// by value everywhere; the zero Set is the empty label.
package rights

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Right identifies a single right within a Universe. The four distinguished
// rights occupy the low bit positions of every Universe.
type Right uint8

// The distinguished rights of the Take-Grant model.
const (
	Read  Right = iota // r: view the target's information
	Write              // w: place information into the target
	Take               // t: take rights the target holds
	Grant              // g: grant rights the holder has to the target
)

// MaxRights is the capacity of a Universe: the four distinguished rights
// plus up to 60 user-declared ones.
const MaxRights = 64

// NumBuiltin is the number of pre-declared rights in every Universe.
const NumBuiltin = numBuiltin

// numBuiltin is the number of pre-declared rights in every Universe.
const numBuiltin = 4

// builtinNames are the canonical single-letter names used by the paper.
var builtinNames = [numBuiltin]string{"r", "w", "t", "g"}

// Universe is a naming context for rights. All Sets compared or combined
// together must come from the same Universe. The zero value is not usable;
// call NewUniverse.
type Universe struct {
	names []string
	index map[string]Right
}

// NewUniverse returns a Universe containing exactly the four distinguished
// rights r, w, t, g.
func NewUniverse() *Universe {
	u := &Universe{
		names: make([]string, numBuiltin, 8),
		index: make(map[string]Right, 8),
	}
	for i, n := range builtinNames {
		u.names[i] = n
		u.index[n] = Right(i)
	}
	return u
}

// Declare adds a named right to the Universe and returns it. Declaring an
// existing name returns the existing right. Names must be non-empty, contain
// no whitespace or commas, and at most MaxRights rights may exist in total.
func (u *Universe) Declare(name string) (Right, error) {
	if name == "" {
		return 0, fmt.Errorf("rights: empty right name")
	}
	if strings.ContainsAny(name, " \t\n\r,(){}") {
		return 0, fmt.Errorf("rights: invalid right name %q", name)
	}
	if r, ok := u.index[name]; ok {
		return r, nil
	}
	if len(u.names) >= MaxRights {
		return 0, fmt.Errorf("rights: universe full (%d rights)", MaxRights)
	}
	r := Right(len(u.names))
	u.names = append(u.names, name)
	u.index[name] = r
	return r, nil
}

// MustDeclare is Declare that panics on error; for static initialisation.
func (u *Universe) MustDeclare(name string) Right {
	r, err := u.Declare(name)
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup returns the right with the given name.
func (u *Universe) Lookup(name string) (Right, bool) {
	r, ok := u.index[name]
	return r, ok
}

// Name returns the name of a right. Unknown rights format as "?<n>".
func (u *Universe) Name(r Right) string {
	if int(r) < len(u.names) {
		return u.names[r]
	}
	return fmt.Sprintf("?%d", r)
}

// Len returns the number of declared rights.
func (u *Universe) Len() int { return len(u.names) }

// All returns every declared right in declaration order.
func (u *Universe) All() []Right {
	rs := make([]Right, len(u.names))
	for i := range rs {
		rs[i] = Right(i)
	}
	return rs
}

// Set is a subset of a Universe's rights, represented as a bitmask.
// The zero value is the empty set.
type Set uint64

// Of builds a Set from individual rights.
func Of(rs ...Right) Set {
	var s Set
	for _, r := range rs {
		s |= 1 << r
	}
	return s
}

// Empty reports whether the set has no rights.
func (s Set) Empty() bool { return s == 0 }

// Has reports whether the set contains r.
func (s Set) Has(r Right) bool { return s&(1<<r) != 0 }

// HasAll reports whether every right in o is in s.
func (s Set) HasAll(o Set) bool { return s&o == o }

// HasAny reports whether s and o intersect.
func (s Set) HasAny(o Set) bool { return s&o != 0 }

// With returns s with r added.
func (s Set) With(r Right) Set { return s | 1<<r }

// Without returns s with r removed.
func (s Set) Without(r Right) Set { return s &^ (1 << r) }

// Union returns s ∪ o.
func (s Set) Union(o Set) Set { return s | o }

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set { return s & o }

// Minus returns s \ o.
func (s Set) Minus(o Set) Set { return s &^ o }

// Count returns the number of rights in the set.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Rights returns the members of the set in ascending order.
func (s Set) Rights() []Right {
	out := make([]Right, 0, s.Count())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, Right(i))
		v &^= 1 << i
	}
	return out
}

// Format renders the set using the Universe's names, comma-separated in
// declaration order, e.g. "r,w" or "t,g,e". The empty set renders as "∅".
func (s Set) Format(u *Universe) string {
	if s == 0 {
		return "∅"
	}
	var b strings.Builder
	first := true
	for _, r := range s.Rights() {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(u.Name(r))
		first = false
	}
	return b.String()
}

// Parse parses a comma-separated list of right names (whitespace tolerated)
// into a Set. The empty string and "∅" parse to the empty set. Unknown
// names are an error; use ParseDeclaring to auto-declare them.
func Parse(u *Universe, text string) (Set, error) {
	return parse(u, text, false)
}

// ParseDeclaring parses like Parse but declares unknown right names in u.
func ParseDeclaring(u *Universe, text string) (Set, error) {
	return parse(u, text, true)
}

func parse(u *Universe, text string, declare bool) (Set, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "∅" {
		return 0, nil
	}
	var s Set
	for _, part := range strings.Split(text, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			return 0, fmt.Errorf("rights: empty name in %q", text)
		}
		r, ok := u.Lookup(name)
		if !ok {
			if !declare {
				return 0, fmt.Errorf("rights: unknown right %q", name)
			}
			var err error
			r, err = u.Declare(name)
			if err != nil {
				return 0, err
			}
		}
		s = s.With(r)
	}
	return s, nil
}

// Names returns the sorted names of the rights in s under u; mainly for
// deterministic test output.
func (s Set) Names(u *Universe) []string {
	names := make([]string, 0, s.Count())
	for _, r := range s.Rights() {
		names = append(names, u.Name(r))
	}
	sort.Strings(names)
	return names
}

// Convenience singletons for the distinguished rights.
var (
	R  = Of(Read)
	W  = Of(Write)
	T  = Of(Take)
	G  = Of(Grant)
	RW = Of(Read, Write)
	TG = Of(Take, Grant)
)
