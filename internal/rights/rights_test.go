package rights

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestUniverseBuiltins(t *testing.T) {
	u := NewUniverse()
	if u.Len() != 4 {
		t.Fatalf("new universe has %d rights, want 4", u.Len())
	}
	for name, want := range map[string]Right{"r": Read, "w": Write, "t": Take, "g": Grant} {
		got, ok := u.Lookup(name)
		if !ok || got != want {
			t.Errorf("Lookup(%q) = %v,%v want %v,true", name, got, ok, want)
		}
		if u.Name(want) != name {
			t.Errorf("Name(%v) = %q want %q", want, u.Name(want), name)
		}
	}
}

func TestUniverseDeclare(t *testing.T) {
	u := NewUniverse()
	e, err := u.Declare("e")
	if err != nil {
		t.Fatal(err)
	}
	if e < numBuiltin {
		t.Errorf("declared right %v collides with builtins", e)
	}
	e2, err := u.Declare("e")
	if err != nil || e2 != e {
		t.Errorf("re-Declare(e) = %v,%v want %v,nil", e2, err, e)
	}
	if u.Name(e) != "e" {
		t.Errorf("Name(e) = %q", u.Name(e))
	}
}

func TestUniverseDeclareInvalid(t *testing.T) {
	u := NewUniverse()
	for _, bad := range []string{"", "a b", "x,y", "p(q", "br{ce"} {
		if _, err := u.Declare(bad); err == nil {
			t.Errorf("Declare(%q) succeeded, want error", bad)
		}
	}
}

func TestUniverseFull(t *testing.T) {
	u := NewUniverse()
	for i := numBuiltin; i < MaxRights; i++ {
		if _, err := u.Declare(fmt.Sprintf("x%d", i)); err != nil {
			t.Fatalf("Declare #%d: %v", i, err)
		}
	}
	if _, err := u.Declare("overflow"); err == nil {
		t.Error("declaring 65th right succeeded, want error")
	}
}

func TestSetOps(t *testing.T) {
	s := Of(Read, Take)
	if !s.Has(Read) || !s.Has(Take) || s.Has(Write) || s.Has(Grant) {
		t.Errorf("Of(Read,Take) membership wrong: %v", s)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d want 2", s.Count())
	}
	if got := s.With(Write); !got.Has(Write) || got.Count() != 3 {
		t.Errorf("With(Write) = %v", got)
	}
	if got := s.Without(Read); got.Has(Read) || got.Count() != 1 {
		t.Errorf("Without(Read) = %v", got)
	}
	if got := s.Union(Of(Grant)); got != Of(Read, Take, Grant) {
		t.Errorf("Union = %v", got)
	}
	if got := s.Intersect(Of(Read, Write)); got != Of(Read) {
		t.Errorf("Intersect = %v", got)
	}
	if got := s.Minus(Of(Read)); got != Of(Take) {
		t.Errorf("Minus = %v", got)
	}
	if !s.HasAll(Of(Read)) || s.HasAll(Of(Read, Write)) {
		t.Error("HasAll wrong")
	}
	if !s.HasAny(Of(Read, Write)) || s.HasAny(Of(Write, Grant)) {
		t.Error("HasAny wrong")
	}
}

func TestSetEmpty(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 || len(s.Rights()) != 0 {
		t.Errorf("zero Set not empty: %v", s)
	}
	if Of(Read).Empty() {
		t.Error("Of(Read).Empty() = true")
	}
}

func TestFormatParse(t *testing.T) {
	u := NewUniverse()
	u.MustDeclare("e")
	cases := []struct {
		set  Set
		text string
	}{
		{0, "∅"},
		{Of(Read), "r"},
		{Of(Read, Write), "r,w"},
		{Of(Take, Grant), "t,g"},
		{Of(Read, Write, Take, Grant), "r,w,t,g"},
	}
	for _, c := range cases {
		if got := c.set.Format(u); got != c.text {
			t.Errorf("Format(%v) = %q want %q", c.set, got, c.text)
		}
		back, err := Parse(u, c.text)
		if err != nil || back != c.set {
			t.Errorf("Parse(%q) = %v,%v want %v", c.text, back, err, c.set)
		}
	}
}

func TestParseWhitespaceAndErrors(t *testing.T) {
	u := NewUniverse()
	s, err := Parse(u, "  r , w ")
	if err != nil || s != RW {
		t.Errorf("Parse with spaces = %v,%v", s, err)
	}
	if _, err := Parse(u, "r,,w"); err == nil {
		t.Error("Parse(r,,w) succeeded")
	}
	if _, err := Parse(u, "zz"); err == nil {
		t.Error("Parse(zz) succeeded without declaration")
	}
	s, err = ParseDeclaring(u, "zz,r")
	if err != nil || !s.Has(Read) || s.Count() != 2 {
		t.Errorf("ParseDeclaring = %v,%v", s, err)
	}
	if _, ok := u.Lookup("zz"); !ok {
		t.Error("ParseDeclaring did not declare zz")
	}
}

func TestParseEmpty(t *testing.T) {
	u := NewUniverse()
	for _, text := range []string{"", "   ", "∅"} {
		s, err := Parse(u, text)
		if err != nil || !s.Empty() {
			t.Errorf("Parse(%q) = %v,%v want empty", text, s, err)
		}
	}
}

func TestRightsRoundTrip(t *testing.T) {
	// Property: Of(s.Rights()...) == s for any mask within the universe width.
	f := func(raw uint64) bool {
		s := Set(raw)
		return Of(s.Rights()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	type pair struct{ A, B uint16 }
	// Keep masks small so they stay in-universe; algebra is width-independent.
	checks := map[string]func(p pair) bool{
		"union commutes": func(p pair) bool {
			a, b := Set(p.A), Set(p.B)
			return a.Union(b) == b.Union(a)
		},
		"intersect commutes": func(p pair) bool {
			a, b := Set(p.A), Set(p.B)
			return a.Intersect(b) == b.Intersect(a)
		},
		"minus disjoint": func(p pair) bool {
			a, b := Set(p.A), Set(p.B)
			return !a.Minus(b).HasAny(b)
		},
		"union superset": func(p pair) bool {
			a, b := Set(p.A), Set(p.B)
			return a.Union(b).HasAll(a) && a.Union(b).HasAll(b)
		},
		"demorgan-count": func(p pair) bool {
			a, b := Set(p.A), Set(p.B)
			return a.Union(b).Count() == a.Count()+b.Count()-a.Intersect(b).Count()
		},
	}
	for name, f := range checks {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNames(t *testing.T) {
	u := NewUniverse()
	got := Of(Grant, Read).Names(u)
	if len(got) != 2 || got[0] != "g" || got[1] != "r" {
		t.Errorf("Names = %v", got)
	}
}
