package qcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func key(gen, rev uint64, kind, params string) Key {
	return Key{Gen: gen, Rev: rev, Kind: kind, Params: params}
}

func TestHitMiss(t *testing.T) {
	c := New(8)
	k := key(1, 7, "can-share", "r:0:1")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, true)
	v, ok := c.Get(k)
	if !ok || v.(bool) != true {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRevisionKeying(t *testing.T) {
	c := New(8)
	c.Put(key(1, 1, "secure", ""), true)
	// The same query at a later revision is a distinct entry: mutation
	// invalidates by moving the revision, never by deleting.
	if _, ok := c.Get(key(1, 2, "secure", "")); ok {
		t.Error("result leaked across revisions")
	}
	// A new graph generation never collides either, even at the same
	// revision number.
	if _, ok := c.Get(key(2, 1, "secure", "")); ok {
		t.Error("result leaked across generations")
	}
	c.Put(key(1, 2, "secure", ""), false)
	v, ok := c.Get(key(1, 1, "secure", ""))
	if !ok || v.(bool) != true {
		t.Error("old-revision entry clobbered")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	a, b, d := key(1, 1, "q", "a"), key(1, 1, "q", "b"), key(1, 1, "q", "d")
	c.Put(a, 1)
	c.Put(b, 2)
	c.Get(a) // a is now most recent; b is the eviction candidate
	c.Put(d, 3)
	if _, ok := c.Get(b); ok {
		t.Error("b survived; LRU order wrong")
	}
	if _, ok := c.Get(a); !ok {
		t.Error("a evicted despite recent use")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutOverwrites(t *testing.T) {
	c := New(2)
	k := key(1, 1, "q", "x")
	c.Put(k, 1)
	c.Put(k, 2)
	if v, _ := c.Get(k); v.(int) != 2 {
		t.Errorf("value = %v", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New(8)
	k := key(1, 1, "islands", "")
	calls := 0
	f := func() any { calls++; return "result" }
	if v, hit := c.GetOrCompute(k, f); hit || v.(string) != "result" {
		t.Fatalf("first call: %v, hit=%v", v, hit)
	}
	if v, hit := c.GetOrCompute(k, f); !hit || v.(string) != "result" {
		t.Fatalf("second call: %v, hit=%v", v, hit)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
}

func TestReset(t *testing.T) {
	c := New(8)
	c.Put(key(1, 1, "q", "a"), 1)
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("len after reset = %d", c.Len())
	}
	if _, ok := c.Get(key(1, 1, "q", "a")); ok {
		t.Error("entry survived reset")
	}
}

func TestDefaultSize(t *testing.T) {
	if got := New(0).Stats().Cap; got != DefaultSize {
		t.Errorf("cap = %d", got)
	}
}

func TestConcurrent(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := key(1, uint64(j%10), "q", fmt.Sprint(id%4))
				c.GetOrCompute(k, func() any { return j })
				c.Stats()
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no traffic recorded")
	}
}

func TestPerKindStats(t *testing.T) {
	c := New(8)
	share := Key{Kind: "can-share", Params: "1:2:3"}
	know := Key{Kind: "can-know", Params: "2:3"}
	c.GetOrCompute(share, func() any { return true }) // miss
	c.GetOrCompute(share, func() any { return true }) // hit
	c.GetOrCompute(share, func() any { return true }) // hit
	c.GetOrCompute(know, func() any { return false }) // miss
	st := c.Stats()
	if got := st.PerKind["can-share"]; got != (KindStats{Hits: 2, Misses: 1}) {
		t.Errorf("can-share = %+v", got)
	}
	if got := st.PerKind["can-know"]; got != (KindStats{Hits: 0, Misses: 1}) {
		t.Errorf("can-know = %+v", got)
	}
	// Snapshots are copies: mutating the returned map must not affect the
	// cache's own counters.
	st.PerKind["can-share"] = KindStats{}
	if got := c.Stats().PerKind["can-share"]; got != (KindStats{Hits: 2, Misses: 1}) {
		t.Errorf("snapshot aliased internal state: %+v", got)
	}
}

func TestGetOrComputeErrNeverCachesErrors(t *testing.T) {
	c := New(8)
	k := Key{Kind: "can-share", Params: "1:2:3"}
	boom := errors.New("budget exhausted")

	// An aborted computation returns its error and leaves no entry behind.
	if _, _, err := c.GetOrComputeErr(k, func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if c.Len() != 0 {
		t.Fatalf("aborted computation was cached: %d entries", c.Len())
	}

	// The next attempt recomputes from scratch and its success is cached.
	calls := 0
	compute := func() (any, error) { calls++; return true, nil }
	v, hit, err := c.GetOrComputeErr(k, compute)
	if err != nil || hit || v != any(true) {
		t.Fatalf("retry = %v %v %v", v, hit, err)
	}
	if _, hit, _ := c.GetOrComputeErr(k, compute); !hit {
		t.Error("successful result should now be cached")
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
}
