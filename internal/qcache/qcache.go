// Package qcache memoizes decision-procedure results per graph revision.
//
// The decision procedures (can•share, can•know, can•steal, the security
// predicate, islands, the Hasse rendering) are pure functions of the
// protection graph, and graph.Graph bumps a revision counter on every
// successful mutation. A query answered at revision R therefore stays
// valid until the next mutation — there is nothing to invalidate
// explicitly; a cache entry keyed by the revision simply becomes
// unreachable when the revision moves on.
//
// Keys also carry a generation number so a serving layer that swaps in a
// whole new graph (whose revision counter restarts) never collides with
// entries from the previous one.
//
// The cache is a bounded LRU with hit/miss/eviction counters, safe for
// concurrent use. Concurrent misses on the same key may compute the value
// twice; both writes store the same pure result, so the race is benign.
package qcache

import (
	"container/list"
	"sync"
)

// Key identifies one memoized decision.
type Key struct {
	// Gen distinguishes graph installations whose revision counters would
	// otherwise collide.
	Gen uint64
	// Rev is the graph revision the result was computed at.
	Rev uint64
	// Kind names the decision procedure ("can-share", "secure", ...).
	Kind string
	// Params is a canonical encoding of the query parameters.
	Params string
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Resets    uint64 `json:"resets"`
	Size      int    `json:"size"`
	Cap       int    `json:"cap"`
	// PerKind breaks hits and misses down by Key.Kind — the per-procedure
	// series a metrics endpoint exposes as labeled counters.
	PerKind map[string]KindStats `json:"per_kind,omitempty"`
}

// KindStats is one decision procedure's slice of the cache counters.
type KindStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type entry struct {
	key Key
	val any
}

// Cache is a bounded LRU of decision results. Create one with New.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[Key]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	resets    uint64
	kinds     map[string]*KindStats
}

// DefaultSize bounds a cache created with New(0).
const DefaultSize = 4096

// New returns a cache holding at most max entries; max <= 0 means
// DefaultSize.
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultSize
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
		kinds: make(map[string]*KindStats),
	}
}

// kind returns the per-kind counter cell, creating it. Callers hold mu.
func (c *Cache) kind(k string) *KindStats {
	ks := c.kinds[k]
	if ks == nil {
		ks = &KindStats{}
		c.kinds[k] = ks
	}
	return ks
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		c.kind(k.Kind).Misses++
		return nil, false
	}
	c.hits++
	c.kind(k.Kind).Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores v under k, evicting the least recently used entry if full.
func (c *Cache) Put(k Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&entry{key: k, val: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// GetOrCompute returns the cached value for k, computing and storing it on
// a miss. The second result reports whether the value was served from the
// cache. compute runs without the cache lock held.
func (c *Cache) GetOrCompute(k Key, compute func() any) (any, bool) {
	v, hit, _ := c.GetOrComputeErr(k, func() (any, error) { return compute(), nil })
	return v, hit
}

// GetOrComputeErr is GetOrCompute for fallible computations. A compute
// that returns a non-nil error is NOT cached: an aborted computation (a
// tripped work budget, a canceled context) must not masquerade as the
// decision's value at this revision — the next query retries from scratch.
func (c *Cache) GetOrComputeErr(k Key, compute func() (any, error)) (any, bool, error) {
	if v, ok := c.Get(k); ok {
		return v, true, nil
	}
	v, err := compute()
	if err != nil {
		return nil, false, err
	}
	c.Put(k, v)
	return v, false, nil
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	per := make(map[string]KindStats, len(c.kinds))
	for k, ks := range c.kinds {
		per[k] = *ks
	}
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Resets:    c.resets,
		Size:      c.ll.Len(),
		Cap:       c.max,
		PerKind:   per,
	}
}

// Reset drops every entry, keeping the counters (and counting the reset —
// a reset is the cache's whole-structure rebuild event).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resets++
	c.ll.Init()
	c.items = make(map[Key]*list.Element)
}
