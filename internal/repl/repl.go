// Package repl implements an interactive shell for exploring Take-Grant
// protection systems: build a graph, apply rules (optionally guarded by
// the combined restriction), and ask the model's decision problems — with
// undo, derivation explanations, and a decision log. cmd/tgrepl wires it
// to a terminal; the Eval core is a pure function of session state for
// testability.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"takegrant/internal/analysis"
	"takegrant/internal/conspiracy"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/specimens"
	"takegrant/internal/steal"
	"takegrant/internal/tgio"
)

// Session is one REPL's mutable state.
type Session struct {
	g       *graph.Graph
	guarded bool
	logged  *restrict.Logged
	guard   *restrict.Guarded
	history []*graph.Graph
}

// New returns an empty unguarded session.
func New() *Session {
	s := &Session{g: graph.New(nil)}
	s.rearm()
	return s
}

// Graph exposes the session's graph (for tests).
func (s *Session) Graph() *graph.Graph { return s.g }

// rearm rebuilds the guard and starts a fresh decision log (guard
// toggles, session start).
func (s *Session) rearm() {
	s.logged = restrict.NewLogged(restrict.Unrestricted{})
	s.refresh()
}

// refresh recomputes the classification for the current graph while
// keeping the decision log (undo, graph edits).
func (s *Session) refresh() {
	var inner restrict.Restriction = restrict.Unrestricted{}
	if s.guarded {
		inner = restrict.NewCombined(hierarchy.AnalyzeRW(s.g))
	}
	s.logged.Inner = inner
	s.guard = restrict.NewGuarded(s.g, s.logged)
}

// snapshot pushes an undo point.
func (s *Session) snapshot() {
	s.history = append(s.history, s.g.Clone())
	if len(s.history) > 100 {
		s.history = s.history[1:]
	}
}

// Eval executes one command line and returns its output.
func (s *Session) Eval(line string) (string, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		return helpText, nil
	case "subject", "object":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: %s <name>", cmd)
		}
		s.snapshot()
		var err error
		if cmd == "subject" {
			_, err = s.g.AddSubject(args[0])
		} else {
			_, err = s.g.AddObject(args[0])
		}
		if err != nil {
			s.undo()
			return "", err
		}
		return "added " + cmd + " " + args[0], nil
	case "edge", "implicit":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: %s <src> <dst> <rights>", cmd)
		}
		src, err := s.vertex(args[0])
		if err != nil {
			return "", err
		}
		dst, err := s.vertex(args[1])
		if err != nil {
			return "", err
		}
		set, err := rights.ParseDeclaring(s.g.Universe(), args[2])
		if err != nil {
			return "", err
		}
		s.snapshot()
		if cmd == "edge" {
			err = s.g.AddExplicit(src, dst, set)
		} else {
			err = s.g.AddImplicit(src, dst, set)
		}
		if err != nil {
			s.undo()
			return "", err
		}
		return "ok", nil
	case "take", "grant":
		if len(args) != 4 {
			return "", fmt.Errorf("usage: %s <x> <y> <z> <rights>", cmd)
		}
		x, y, z, set, err := s.xyzRights(args)
		if err != nil {
			return "", err
		}
		app := rules.Take(x, y, z, set)
		if cmd == "grant" {
			app = rules.Grant(x, y, z, set)
		}
		return s.apply(app)
	case "create":
		if len(args) != 4 {
			return "", fmt.Errorf("usage: create <x> <name> subject|object <rights>")
		}
		x, err := s.vertex(args[0])
		if err != nil {
			return "", err
		}
		kind := graph.Object
		switch args[2] {
		case "subject":
			kind = graph.Subject
		case "object":
		default:
			return "", fmt.Errorf("kind must be subject or object")
		}
		set, err := rights.ParseDeclaring(s.g.Universe(), args[3])
		if err != nil {
			return "", err
		}
		return s.apply(rules.Create(x, args[1], kind, set))
	case "remove":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: remove <x> <y> <rights>")
		}
		x, err := s.vertex(args[0])
		if err != nil {
			return "", err
		}
		y, err := s.vertex(args[1])
		if err != nil {
			return "", err
		}
		set, err := rights.Parse(s.g.Universe(), args[2])
		if err != nil {
			return "", err
		}
		return s.apply(rules.Remove(x, y, set))
	case "post", "pass", "spy", "find":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: %s <x> <y> <z>", cmd)
		}
		x, err := s.vertex(args[0])
		if err != nil {
			return "", err
		}
		y, err := s.vertex(args[1])
		if err != nil {
			return "", err
		}
		z, err := s.vertex(args[2])
		if err != nil {
			return "", err
		}
		var app rules.Application
		switch cmd {
		case "post":
			app = rules.Post(x, y, z)
		case "pass":
			app = rules.Pass(x, y, z)
		case "spy":
			app = rules.Spy(x, y, z)
		case "find":
			app = rules.Find(x, y, z)
		}
		return s.apply(app)
	case "share", "steal", "explain":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: %s <right> <x> <y>", cmd)
		}
		r, ok := s.g.Universe().Lookup(args[0])
		if !ok {
			return "", fmt.Errorf("unknown right %q", args[0])
		}
		x, err := s.vertex(args[1])
		if err != nil {
			return "", err
		}
		y, err := s.vertex(args[2])
		if err != nil {
			return "", err
		}
		switch cmd {
		case "share":
			return fmt.Sprintf("can.share = %v", analysis.CanShare(s.g, r, x, y)), nil
		case "steal":
			return fmt.Sprintf("can.steal = %v", steal.CanSteal(s.g, r, x, y)), nil
		default:
			d, err := analysis.SynthesizeShare(s.g, r, x, y)
			if err != nil {
				return "", err
			}
			clone := s.g.Clone()
			if _, err := d.Replay(clone); err != nil {
				return "", err
			}
			return strings.TrimRight(d.Format(clone), "\n"), nil
		}
	case "know", "knowf", "conspirators":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: %s <x> <y>", cmd)
		}
		x, err := s.vertex(args[0])
		if err != nil {
			return "", err
		}
		y, err := s.vertex(args[1])
		if err != nil {
			return "", err
		}
		switch cmd {
		case "know":
			return fmt.Sprintf("can.know = %v", analysis.CanKnow(s.g, x, y)), nil
		case "knowf":
			return fmt.Sprintf("can.know.f = %v", analysis.CanKnowF(s.g, x, y)), nil
		default:
			n, chain, ok := conspiracy.MinConspiratorsF(s.g, x, y)
			if !ok {
				return "no de facto flow", nil
			}
			names := make([]string, len(chain))
			for i, v := range chain {
				names[i] = s.g.Name(v)
			}
			return fmt.Sprintf("%d conspirators: %s", n, strings.Join(names, " → ")), nil
		}
	case "islands":
		var parts []string
		for _, island := range analysis.Islands(s.g) {
			names := make([]string, len(island))
			for i, v := range island {
				names[i] = s.g.Name(v)
			}
			sort.Strings(names)
			parts = append(parts, "{"+strings.Join(names, ",")+"}")
		}
		return strings.Join(parts, " "), nil
	case "levels", "hasse":
		return strings.TrimRight(hierarchy.AnalyzeRW(s.g).Hasse(), "\n"), nil
	case "secure":
		ok, v := hierarchy.Secure(s.g)
		if ok {
			return "secure", nil
		}
		return fmt.Sprintf("INSECURE: %s can come to know %s",
			s.g.Name(v.Lower), s.g.Name(v.Upper)), nil
	case "audit":
		st := hierarchy.AnalyzeRW(s.g)
		viols := restrict.NewCombined(st).Audit(s.g)
		if len(viols) == 0 {
			return "clean", nil
		}
		var parts []string
		for _, v := range viols {
			parts = append(parts, fmt.Sprintf("(%s) %s→%s", v.Rule,
				s.g.Name(v.Src), s.g.Name(v.Dst)))
		}
		return strings.Join(parts, " "), nil
	case "render":
		return strings.TrimRight(tgio.Render(s.g), "\n"), nil
	case "save":
		return strings.TrimRight(tgio.WriteString(s.g), "\n"), nil
	case "guard":
		if len(args) != 1 || (args[0] != "on" && args[0] != "off") {
			return "", fmt.Errorf("usage: guard on|off")
		}
		s.guarded = args[0] == "on"
		s.rearm()
		return "guard " + args[0] + " (classification recomputed)", nil
	case "log":
		if out := strings.TrimRight(s.logged.Format(s.g), "\n"); out != "" {
			return out, nil
		}
		return "no guarded decisions yet", nil
	case "load":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: load <specimen> (%s)",
				strings.Join(specimens.List(), " | "))
		}
		g, err := specimens.Load(args[0])
		if err != nil {
			return "", err
		}
		s.snapshot()
		s.g = g
		s.refresh()
		return fmt.Sprintf("loaded %s: %d vertices, %d edges",
			args[0], g.NumVertices(), g.NumEdges()), nil
	case "trace":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: trace <right> <x> <y>")
		}
		r, ok := s.g.Universe().Lookup(args[0])
		if !ok {
			return "", fmt.Errorf("unknown right %q", args[0])
		}
		x, err := s.vertex(args[1])
		if err != nil {
			return "", err
		}
		y, err := s.vertex(args[2])
		if err != nil {
			return "", err
		}
		d, err := analysis.SynthesizeShare(s.g, r, x, y)
		if err != nil {
			return "", err
		}
		out, err := rules.Trace(s.g, d)
		if err != nil {
			return "", err
		}
		return strings.TrimRight(out, "\n"), nil
	case "undo":
		if !s.undo() {
			return "", fmt.Errorf("nothing to undo")
		}
		return "undone", nil
	default:
		return "", fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (s *Session) undo() bool {
	if len(s.history) == 0 {
		return false
	}
	s.g = s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	s.refresh()
	return true
}

func (s *Session) apply(app rules.Application) (string, error) {
	s.snapshot()
	if err := s.guard.Apply(app); err != nil {
		s.undo()
		return "", err
	}
	return "applied: " + app.Format(s.g), nil
}

func (s *Session) vertex(name string) (graph.ID, error) {
	v, ok := s.g.Lookup(name)
	if !ok {
		return graph.None, fmt.Errorf("unknown vertex %q", name)
	}
	return v, nil
}

func (s *Session) xyzRights(args []string) (x, y, z graph.ID, set rights.Set, err error) {
	if x, err = s.vertex(args[0]); err != nil {
		return
	}
	if y, err = s.vertex(args[1]); err != nil {
		return
	}
	if z, err = s.vertex(args[2]); err != nil {
		return
	}
	set, err = rights.Parse(s.g.Universe(), args[3])
	return
}

const helpText = `graph building:
  subject <n> | object <n> | edge <src> <dst> <rights> | implicit <src> <dst> <rights>
rules (guarded when guard is on):
  take <x> <y> <z> <rights>    x takes (rights to z) from y
  grant <x> <y> <z> <rights>   x grants (rights to z) to y
  create <x> <name> subject|object <rights> | remove <x> <y> <rights>
  post|pass|spy|find <x> <y> <z>
queries:
  share|steal|explain|trace <right> <x> <y>
  know|knowf|conspirators <x> <y>
  islands | levels | hasse | secure | audit | render | save
session:
  load <specimen> | guard on|off | log | undo | help | quit`

// Run drives the session over a reader/writer pair until EOF or "quit".
func Run(in io.Reader, out io.Writer) error {
	s := New()
	sc := bufio.NewScanner(in)
	fmt.Fprintln(out, "takegrant repl — 'help' for commands")
	for {
		fmt.Fprint(out, "tg> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := sc.Text()
		if strings.TrimSpace(line) == "quit" || strings.TrimSpace(line) == "exit" {
			return nil
		}
		res, err := s.Eval(line)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			continue
		}
		if res != "" {
			fmt.Fprintln(out, res)
		}
	}
}
