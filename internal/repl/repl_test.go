package repl

import (
	"strings"
	"testing"
)

// evalAll runs a script of commands, failing the test on unexpected errors;
// lines prefixed with "!" are expected to error.
func evalAll(t *testing.T, s *Session, script ...string) string {
	t.Helper()
	var last string
	for _, line := range script {
		wantErr := strings.HasPrefix(line, "!")
		line = strings.TrimPrefix(line, "!")
		out, err := s.Eval(line)
		if wantErr && err == nil {
			t.Fatalf("%q succeeded, expected error", line)
		}
		if !wantErr && err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		last = out
	}
	return last
}

func TestBuildAndQuery(t *testing.T) {
	s := New()
	out := evalAll(t, s,
		"subject x",
		"object v",
		"object y",
		"edge x v t",
		"edge v y r",
		"share r x y",
	)
	if out != "can.share = true" {
		t.Errorf("share = %q", out)
	}
	out = evalAll(t, s, "explain r x y")
	if !strings.Contains(out, "x takes (r to y) from v") {
		t.Errorf("explain = %q", out)
	}
	out = evalAll(t, s, "take x v y r")
	if !strings.Contains(out, "applied") {
		t.Errorf("take = %q", out)
	}
	if !s.Graph().Explicit(1, 2).Empty() {
		// v→y unchanged; x→y new — spot check via render
		_ = out
	}
}

func TestGuardToggle(t *testing.T) {
	s := New()
	evalAll(t, s,
		"subject low",
		"subject high",
		"object lowbb",
		"object highbb",
		"edge low lowbb r,w",
		"edge high highbb r,w",
		"edge high lowbb r",
		"edge low high t",
		"guard on",
		"!take low high highbb r", // read-up refused
		"take low high highbb w",  // write-up fine
	)
	out := evalAll(t, s, "log")
	if !strings.Contains(out, "refuse") || !strings.Contains(out, "allow") {
		t.Errorf("log = %q", out)
	}
	evalAll(t, s, "guard off", "take low high highbb r") // now allowed
	// The breach flow is now real.
	if out := evalAll(t, s, "knowf low highbb"); out != "can.know.f = true" {
		t.Errorf("knowf after breach = %q", out)
	}
}

func TestUndo(t *testing.T) {
	s := New()
	evalAll(t, s, "subject a", "object b", "edge a b r")
	if _, ok := s.Graph().Lookup("b"); !ok {
		t.Fatal("b missing")
	}
	evalAll(t, s, "undo") // undo edge
	a, _ := s.Graph().Lookup("a")
	b, _ := s.Graph().Lookup("b")
	if !s.Graph().Explicit(a, b).Empty() {
		t.Error("edge not undone")
	}
	evalAll(t, s, "undo") // undo object b
	if _, ok := s.Graph().Lookup("b"); ok {
		t.Error("b not undone")
	}
	evalAll(t, s, "undo", "!undo") // undo a; then empty stack
}

func TestFailedCommandsDoNotMutate(t *testing.T) {
	s := New()
	evalAll(t, s, "subject a", "object b")
	before := s.Graph().Canonical()
	evalAll(t, s,
		"!edge a ghost r",
		"!take a b b r",
		"!subject a", // duplicate
	)
	if s.Graph().Canonical() != before {
		t.Error("failed command mutated the graph")
	}
	// And undo still unwinds to the right place.
	evalAll(t, s, "edge a b r", "undo")
	if s.Graph().Canonical() != before {
		t.Error("undo after failures misaligned")
	}
}

func TestQueriesAndViews(t *testing.T) {
	s := New()
	evalAll(t, s,
		"subject p", "subject q", "object o",
		"edge p q t", "edge q o r",
	)
	if out := evalAll(t, s, "islands"); !strings.Contains(out, "{p,q}") {
		t.Errorf("islands = %q", out)
	}
	if out := evalAll(t, s, "knowf q o"); out != "can.know.f = true" {
		t.Errorf("knowf = %q", out)
	}
	if out := evalAll(t, s, "know p o"); out != "can.know = true" {
		t.Errorf("know = %q", out)
	}
	if out := evalAll(t, s, "steal r p o"); out != "can.steal = true" {
		t.Errorf("steal = %q", out)
	}
	if out := evalAll(t, s, "conspirators q o"); !strings.Contains(out, "1 conspirators") {
		t.Errorf("conspirators = %q", out)
	}
	if out := evalAll(t, s, "secure"); !strings.Contains(out, "INSECURE") {
		// p can come to know o despite... actually q reads o legitimately;
		// levels: q above o? Either verdict is plausible here — just make
		// sure the command runs.
		_ = out
	}
	if out := evalAll(t, s, "render"); !strings.Contains(out, "● p") {
		t.Errorf("render = %q", out)
	}
	if out := evalAll(t, s, "save"); !strings.Contains(out, "edge p q t") {
		t.Errorf("save = %q", out)
	}
	if out := evalAll(t, s, "hasse"); out == "" {
		t.Error("hasse empty")
	}
	if out := evalAll(t, s, "help"); !strings.Contains(out, "take <x> <y> <z>") {
		t.Error("help wrong")
	}
}

func TestDeFactoCommands(t *testing.T) {
	s := New()
	evalAll(t, s,
		"subject x", "object m", "subject z",
		"edge x m r", "edge z m w",
		"post x m z",
	)
	x, _ := s.Graph().Lookup("x")
	z, _ := s.Graph().Lookup("z")
	if s.Graph().Implicit(x, z).Empty() {
		t.Error("post did not add implicit edge")
	}
}

func TestErrorsSurfaced(t *testing.T) {
	s := New()
	evalAll(t, s,
		"!bogus",
		"!subject",
		"!share zz a b",
		"!guard maybe",
		"!know a b",
		"", // blank ok
		"# comment ok",
	)
}

func TestLoadSpecimenAndTrace(t *testing.T) {
	s := New()
	out := evalAll(t, s, "load fig61")
	if !strings.Contains(out, "loaded fig61") {
		t.Errorf("load = %q", out)
	}
	out = evalAll(t, s, "trace r low secret")
	if !strings.Contains(out, "takes (r to secret)") || !strings.Contains(out, "+low→secret r") {
		t.Errorf("trace = %q", out)
	}
	evalAll(t, s, "!load nothere", "!trace zz low secret", "!trace r ghost secret")
	// undo restores the pre-load graph (empty).
	evalAll(t, s, "undo")
	if s.Graph().NumVertices() != 0 {
		t.Error("undo after load did not restore")
	}
}

func TestRunLoop(t *testing.T) {
	in := strings.NewReader("subject a\nobject b\nedge a b r\nrender\nquit\n")
	var out strings.Builder
	if err := Run(in, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "● a") || !strings.Contains(text, "tg>") {
		t.Errorf("run output:\n%s", text)
	}
	// Errors keep the loop alive; EOF terminates.
	in2 := strings.NewReader("bogus\n")
	var out2 strings.Builder
	if err := Run(in2, &out2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "error:") {
		t.Error("error not printed")
	}
}
