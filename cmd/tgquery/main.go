// Command tgquery evaluates Take-Grant decision problems on a protection
// graph in .tg format (see the tgio package for the syntax).
//
// Usage:
//
//	tgquery -f graph.tg <query>
//
// Queries:
//
//	can.share <right> <x> <y>    Theorem 2.3
//	can.know <x> <y>             Theorem 3.2
//	can.know.f <x> <y>           Theorem 3.1 (de facto only)
//	can.steal <right> <x> <y>    Snyder's theft predicate
//	explain.share <right> <x> <y>  print a replayable derivation
//	explain.know <x> <y>           print a replayable derivation
//	conspirators <x> <y>         minimum cooperating subjects (de facto)
//	islands                      maximal subject-only tg components
//	levels                       rw-levels and the higher order
//	secure                       §5 security predicate
//	audit                        restriction violations (Corollary 5.6)
//	render                       pretty-print the graph
//
// With -queries FILE, tgquery decides a whole file of boolean queries
// (one per line, # comments and blank lines skipped) in one invocation:
// the frozen adjacency snapshot and the island index are built once and
// shared, and -parallel N decides that many queries concurrently. Results
// print in input order; the exit status is the worst any line earned.
//
// The graph is read from -f, or stdin when -f is absent. Exit status 0
// means the predicate holds (for boolean queries) or the command
// succeeded; 1 means the predicate is false; 2 reports usage errors; 3
// means the query exceeded its work budget (-timeout / -max-visited)
// before reaching a verdict.
//
// With -trace, decision-procedure queries print a per-phase breakdown on
// stderr: each phase of the theorem being decided (initial spanners,
// bridge closure, take reach, witness synthesis, ...) with its duration
// and work counters (vertices visited, edges scanned).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"takegrant/internal/analysis"
	"takegrant/internal/budget"
	"takegrant/internal/conspiracy"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/obs"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/specimens"
	"takegrant/internal/steal"
	"takegrant/internal/tgio"
)

func main() {
	file := flag.String("f", "", "graph file (.tg or .tgb); stdin when absent")
	spec := flag.String("specimen", "", "load a built-in paper figure instead (see 'specimens')")
	trace := flag.Bool("trace", false, "print a per-phase breakdown of the decision procedure on stderr")
	timeout := flag.Duration("timeout", 0, "abort the decision procedure after this long (0 = no deadline)")
	maxVisited := flag.Int64("max-visited", 0, "abort after visiting this many product states (0 = unlimited)")
	queries := flag.String("queries", "", "file of boolean queries, one per line; results print in input order")
	parallel := flag.Int("parallel", 1, "with -queries: decide this many queries concurrently over one shared snapshot")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 && *queries == "" {
		usage()
	}
	if len(args) > 0 && args[0] == "specimens" {
		for _, n := range specimens.List() {
			fmt.Println(n)
		}
		return
	}
	var g *graph.Graph
	if *spec != "" {
		var err error
		g, err = specimens.Load(*spec)
		if err != nil {
			fail(err)
		}
	} else {
		g = load(*file)
	}
	if *queries != "" {
		os.Exit(runQueryFile(g, *queries, *parallel, *maxVisited, *timeout))
	}
	// -trace attaches an obs.Probe to the decision procedure and prints its
	// per-phase report on stderr, after the query's own output and before
	// any boolean exit.
	var probe *obs.Probe
	mkProbe := func(op string) *obs.Probe {
		if *trace {
			probe = obs.NewProbe(op)
		}
		return probe
	}
	report := func() {
		if probe != nil {
			fmt.Fprint(os.Stderr, probe.Report())
		}
	}
	// One budget per invocation: tgquery runs exactly one decision procedure.
	bud := budget.New(nil, *maxVisited, *timeout)
	// checkBudget exits with status 3 on exhaustion so scripts can tell a
	// shed query from a false predicate or a usage error.
	checkBudget := func(err error) {
		if err == nil {
			return
		}
		report()
		if errors.Is(err, budget.ErrExhausted) {
			fmt.Fprintln(os.Stderr, "tgquery:", err)
			os.Exit(3)
		}
		fail(err)
	}
	switch args[0] {
	case "can.share", "can.steal", "explain.share", "trace.share":
		if len(args) != 4 {
			usage()
		}
		r := lookupRight(g, args[1])
		x, y := lookupVertex(g, args[2]), lookupVertex(g, args[3])
		switch args[0] {
		case "can.share":
			ok, err := analysis.CanShareObs(g, r, x, y, mkProbe("can.share"), bud)
			checkBudget(err)
			report()
			boolOut(args, ok)
		case "can.steal":
			boolOut(args, steal.CanSteal(g, r, x, y))
		case "explain.share":
			d, err := analysis.SynthesizeShareObs(g, r, x, y, mkProbe("explain.share"), bud)
			checkBudget(err)
			if err != nil {
				report()
				fail(err)
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil {
				fail(err)
			}
			fmt.Print(d.Format(clone))
			report()
		case "trace.share":
			d, err := analysis.SynthesizeShareObs(g, r, x, y, mkProbe("trace.share"), bud)
			checkBudget(err)
			if err != nil {
				report()
				fail(err)
			}
			out, err := rules.Trace(g, d)
			if err != nil {
				fail(err)
			}
			fmt.Print(out)
			report()
		}
	case "can.know", "can.know.f", "explain.know", "conspirators":
		if len(args) != 3 {
			usage()
		}
		x, y := lookupVertex(g, args[1]), lookupVertex(g, args[2])
		switch args[0] {
		case "can.know":
			ok, err := analysis.CanKnowObs(g, x, y, mkProbe("can.know"), bud)
			checkBudget(err)
			report()
			boolOut(args, ok)
		case "can.know.f":
			ok, err := analysis.CanKnowFObs(g, x, y, mkProbe("can.know.f"), bud)
			checkBudget(err)
			report()
			boolOut(args, ok)
		case "explain.know":
			d, err := analysis.SynthesizeKnowObs(g, x, y, mkProbe("explain.know"), bud)
			checkBudget(err)
			if err != nil {
				report()
				fail(err)
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil {
				fail(err)
			}
			fmt.Print(d.Format(clone))
			report()
		case "conspirators":
			n, chain, ok := conspiracy.MinConspiratorsF(g, x, y)
			if !ok {
				fmt.Println("no de facto flow")
				os.Exit(1)
			}
			names := make([]string, len(chain))
			for i, v := range chain {
				names[i] = g.Name(v)
			}
			fmt.Printf("%d conspirators: %s\n", n, strings.Join(names, " → "))
		}
	case "islands":
		for i, island := range analysis.Islands(g) {
			names := make([]string, len(island))
			for j, v := range island {
				names[j] = g.Name(v)
			}
			fmt.Printf("I%d: {%s}\n", i+1, strings.Join(names, ", "))
		}
	case "levels":
		s := hierarchy.AnalyzeRW(g)
		for i, lvl := range s.Levels() {
			names := make([]string, len(lvl))
			for j, v := range lvl {
				names[j] = g.Name(v)
			}
			fmt.Printf("level %d: {%s}\n", i, strings.Join(names, ", "))
		}
		for i := 0; i < s.NumLevels(); i++ {
			for j := 0; j < s.NumLevels(); j++ {
				if s.HigherLevel(i, j) {
					fmt.Printf("level %d > level %d\n", i, j)
				}
			}
		}
	case "hasse":
		fmt.Print(hierarchy.AnalyzeRW(g).Hasse())
	case "secure":
		ok, v := hierarchy.Secure(g)
		if ok {
			fmt.Println("secure")
			return
		}
		fmt.Printf("INSECURE: %s can come to know %s\n", g.Name(v.Lower), g.Name(v.Upper))
		os.Exit(1)
	case "audit":
		s := hierarchy.AnalyzeRW(g)
		viols := restrict.NewCombined(s).Audit(g)
		if len(viols) == 0 {
			fmt.Println("clean")
			return
		}
		for _, v := range viols {
			fmt.Printf("violation (%s): %s → %s carries %s\n",
				v.Rule, g.Name(v.Src), g.Name(v.Dst), g.Universe().Name(v.Right))
		}
		os.Exit(1)
	case "render":
		fmt.Print(tgio.Render(g))
	case "json":
		if err := tgio.EncodeJSON(os.Stdout, g); err != nil {
			fail(err)
		}
	case "stats":
		s := tgio.Summarize(g)
		fmt.Printf("subjects %d  objects %d  explicit edges %d  implicit edges %d\n",
			s.Subjects, s.Objects, s.ExplicitEdges, s.ImplicitEdges)
		for _, name := range []string{"r", "w", "t", "g"} {
			fmt.Printf("  %s edges: %d\n", name, s.PerRight[name])
		}
	case "profile":
		if len(args) != 2 {
			usage()
		}
		v := lookupVertex(g, args[1])
		profile, err := analysis.ProfileObs(g, v, mkProbe("profile"), bud)
		checkBudget(err)
		for _, a := range profile {
			marker := "acquirable"
			if a.Held {
				marker = "held"
			}
			fmt.Printf("%s to %-14s %s\n", g.Universe().Name(a.Right), g.Name(a.Target), marker)
		}
		report()
	default:
		usage()
	}
}

// runQueryFile decides every boolean query in path — one query per line,
// blank lines and # comments skipped — and prints results in input order.
// The frozen CSR snapshot and the island index are built once up front;
// -parallel workers then decide queries concurrently over the same shared
// structures, each under its own -timeout/-max-visited budget. The exit
// status is the worst any line earned: 2 (malformed line) over 3 (budget
// exhausted) over 1 (a false predicate) over 0 (all true).
func runQueryFile(g *graph.Graph, path string, parallel int, maxVisited int64, timeout time.Duration) int {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		lines = append(lines, s)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(lines) == 0 {
		fail(fmt.Errorf("%s holds no queries", path))
	}
	// Build the shared read-optimized structures before the fan-out so no
	// worker pays for (or races to trigger) the lazy first build.
	g.Snapshot()
	g.TGIslands()
	type result struct {
		verdict bool
		err     error
	}
	results := make([]result, len(lines))
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(lines) {
		parallel = len(lines)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(lines) {
					return
				}
				b := budget.New(nil, maxVisited, timeout)
				results[i].verdict, results[i].err = decideLine(g, lines[i], b)
			}
		}()
	}
	wg.Wait()
	exit := 0
	// Severity order for the combined exit status: 2 > 3 > 1 > 0.
	rank := map[int]int{0: 0, 1: 1, 3: 2, 2: 3}
	worse := func(c int) {
		if rank[c] > rank[exit] {
			exit = c
		}
	}
	for i, res := range results {
		if res.err != nil {
			fmt.Printf("%s = error: %v\n", lines[i], res.err)
			if errors.Is(res.err, budget.ErrExhausted) {
				worse(3)
			} else {
				worse(2)
			}
			continue
		}
		fmt.Printf("%s = %v\n", lines[i], res.verdict)
		if !res.verdict {
			worse(1)
		}
	}
	return exit
}

// decideLine parses and decides one boolean query line from a -queries
// file. Lookup failures come back as errors rather than exiting: one bad
// line must not abort the rest of the file.
func decideLine(g *graph.Graph, line string, b *budget.Budget) (bool, error) {
	fs := strings.Fields(line)
	bad := func() error {
		return fmt.Errorf("unsupported query (boolean forms only: can.share <right> <x> <y> | can.know <x> <y> | can.know.f <x> <y> | can.steal <right> <x> <y>)")
	}
	lookupV := func(name string) (graph.ID, error) {
		v, ok := g.Lookup(name)
		if !ok {
			return graph.None, fmt.Errorf("unknown vertex %q", name)
		}
		return v, nil
	}
	switch fs[0] {
	case "can.share", "can.steal":
		if len(fs) != 4 {
			return false, bad()
		}
		r, ok := g.Universe().Lookup(fs[1])
		if !ok {
			return false, fmt.Errorf("unknown right %q", fs[1])
		}
		x, err := lookupV(fs[2])
		if err != nil {
			return false, err
		}
		y, err := lookupV(fs[3])
		if err != nil {
			return false, err
		}
		if fs[0] == "can.steal" {
			return steal.CanSteal(g, r, x, y), nil
		}
		return analysis.CanShareObs(g, r, x, y, nil, b)
	case "can.know", "can.know.f":
		if len(fs) != 3 {
			return false, bad()
		}
		x, err := lookupV(fs[1])
		if err != nil {
			return false, err
		}
		y, err := lookupV(fs[2])
		if err != nil {
			return false, err
		}
		if fs[0] == "can.know.f" {
			return analysis.CanKnowFObs(g, x, y, nil, b)
		}
		return analysis.CanKnowObs(g, x, y, nil, b)
	}
	return false, bad()
}

func load(file string) *graph.Graph {
	in := os.Stdin
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	g, err := tgio.ParseAny(in)
	if err != nil {
		fail(err)
	}
	return g
}

func lookupRight(g *graph.Graph, name string) rights.Right {
	r, ok := g.Universe().Lookup(name)
	if !ok {
		fail(fmt.Errorf("unknown right %q", name))
	}
	return r
}

func lookupVertex(g *graph.Graph, name string) graph.ID {
	v, ok := g.Lookup(name)
	if !ok {
		fail(fmt.Errorf("unknown vertex %q", name))
	}
	return v
}

func boolOut(args []string, b bool) {
	fmt.Printf("%s = %v\n", strings.Join(args, " "), b)
	if !b {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tgquery:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tgquery [-f graph.tg] [-trace] [-timeout d] [-max-visited n] <query>
       tgquery [-f graph.tg] -queries FILE [-parallel N]
queries:
  can.share <right> <x> <y>      can.know <x> <y>     can.know.f <x> <y>
  can.steal <right> <x> <y>      explain.share <right> <x> <y>
  explain.know <x> <y>           conspirators <x> <y>
  profile <x> | trace.share <right> <x> <y>
  islands | levels | hasse | secure | audit | render | json | stats
  specimens   (list built-in paper figures; use with -specimen <name>)`)
	os.Exit(2)
}
