// Command tgquery evaluates Take-Grant decision problems on a protection
// graph in .tg format (see the tgio package for the syntax).
//
// Usage:
//
//	tgquery -f graph.tg <query>
//
// Queries:
//
//	can.share <right> <x> <y>    Theorem 2.3
//	can.know <x> <y>             Theorem 3.2
//	can.know.f <x> <y>           Theorem 3.1 (de facto only)
//	can.steal <right> <x> <y>    Snyder's theft predicate
//	explain.share <right> <x> <y>  print a replayable derivation
//	explain.know <x> <y>           print a replayable derivation
//	conspirators <x> <y>         minimum cooperating subjects (de facto)
//	islands                      maximal subject-only tg components
//	levels                       rw-levels and the higher order
//	secure                       §5 security predicate
//	audit                        restriction violations (Corollary 5.6)
//	render                       pretty-print the graph
//
// The graph is read from -f, or stdin when -f is absent. Exit status 0
// means the predicate holds (for boolean queries) or the command
// succeeded; 1 means the predicate is false; 2 reports usage errors; 3
// means the query exceeded its work budget (-timeout / -max-visited)
// before reaching a verdict.
//
// With -trace, decision-procedure queries print a per-phase breakdown on
// stderr: each phase of the theorem being decided (initial spanners,
// bridge closure, take reach, witness synthesis, ...) with its duration
// and work counters (vertices visited, edges scanned).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"takegrant/internal/analysis"
	"takegrant/internal/budget"
	"takegrant/internal/conspiracy"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/obs"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/specimens"
	"takegrant/internal/steal"
	"takegrant/internal/tgio"
)

func main() {
	file := flag.String("f", "", "graph file (.tg); stdin when absent")
	spec := flag.String("specimen", "", "load a built-in paper figure instead (see 'specimens')")
	trace := flag.Bool("trace", false, "print a per-phase breakdown of the decision procedure on stderr")
	timeout := flag.Duration("timeout", 0, "abort the decision procedure after this long (0 = no deadline)")
	maxVisited := flag.Int64("max-visited", 0, "abort after visiting this many product states (0 = unlimited)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	if args[0] == "specimens" {
		for _, n := range specimens.List() {
			fmt.Println(n)
		}
		return
	}
	var g *graph.Graph
	if *spec != "" {
		var err error
		g, err = specimens.Load(*spec)
		if err != nil {
			fail(err)
		}
	} else {
		g = load(*file)
	}
	// -trace attaches an obs.Probe to the decision procedure and prints its
	// per-phase report on stderr, after the query's own output and before
	// any boolean exit.
	var probe *obs.Probe
	mkProbe := func(op string) *obs.Probe {
		if *trace {
			probe = obs.NewProbe(op)
		}
		return probe
	}
	report := func() {
		if probe != nil {
			fmt.Fprint(os.Stderr, probe.Report())
		}
	}
	// One budget per invocation: tgquery runs exactly one decision procedure.
	bud := budget.New(nil, *maxVisited, *timeout)
	// checkBudget exits with status 3 on exhaustion so scripts can tell a
	// shed query from a false predicate or a usage error.
	checkBudget := func(err error) {
		if err == nil {
			return
		}
		report()
		if errors.Is(err, budget.ErrExhausted) {
			fmt.Fprintln(os.Stderr, "tgquery:", err)
			os.Exit(3)
		}
		fail(err)
	}
	switch args[0] {
	case "can.share", "can.steal", "explain.share", "trace.share":
		if len(args) != 4 {
			usage()
		}
		r := lookupRight(g, args[1])
		x, y := lookupVertex(g, args[2]), lookupVertex(g, args[3])
		switch args[0] {
		case "can.share":
			ok, err := analysis.CanShareObs(g, r, x, y, mkProbe("can.share"), bud)
			checkBudget(err)
			report()
			boolOut(args, ok)
		case "can.steal":
			boolOut(args, steal.CanSteal(g, r, x, y))
		case "explain.share":
			d, err := analysis.SynthesizeShareObs(g, r, x, y, mkProbe("explain.share"), bud)
			checkBudget(err)
			if err != nil {
				report()
				fail(err)
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil {
				fail(err)
			}
			fmt.Print(d.Format(clone))
			report()
		case "trace.share":
			d, err := analysis.SynthesizeShareObs(g, r, x, y, mkProbe("trace.share"), bud)
			checkBudget(err)
			if err != nil {
				report()
				fail(err)
			}
			out, err := rules.Trace(g, d)
			if err != nil {
				fail(err)
			}
			fmt.Print(out)
			report()
		}
	case "can.know", "can.know.f", "explain.know", "conspirators":
		if len(args) != 3 {
			usage()
		}
		x, y := lookupVertex(g, args[1]), lookupVertex(g, args[2])
		switch args[0] {
		case "can.know":
			ok, err := analysis.CanKnowObs(g, x, y, mkProbe("can.know"), bud)
			checkBudget(err)
			report()
			boolOut(args, ok)
		case "can.know.f":
			ok, err := analysis.CanKnowFObs(g, x, y, mkProbe("can.know.f"), bud)
			checkBudget(err)
			report()
			boolOut(args, ok)
		case "explain.know":
			d, err := analysis.SynthesizeKnowObs(g, x, y, mkProbe("explain.know"), bud)
			checkBudget(err)
			if err != nil {
				report()
				fail(err)
			}
			clone := g.Clone()
			if _, err := d.Replay(clone); err != nil {
				fail(err)
			}
			fmt.Print(d.Format(clone))
			report()
		case "conspirators":
			n, chain, ok := conspiracy.MinConspiratorsF(g, x, y)
			if !ok {
				fmt.Println("no de facto flow")
				os.Exit(1)
			}
			names := make([]string, len(chain))
			for i, v := range chain {
				names[i] = g.Name(v)
			}
			fmt.Printf("%d conspirators: %s\n", n, strings.Join(names, " → "))
		}
	case "islands":
		for i, island := range analysis.Islands(g) {
			names := make([]string, len(island))
			for j, v := range island {
				names[j] = g.Name(v)
			}
			fmt.Printf("I%d: {%s}\n", i+1, strings.Join(names, ", "))
		}
	case "levels":
		s := hierarchy.AnalyzeRW(g)
		for i, lvl := range s.Levels() {
			names := make([]string, len(lvl))
			for j, v := range lvl {
				names[j] = g.Name(v)
			}
			fmt.Printf("level %d: {%s}\n", i, strings.Join(names, ", "))
		}
		for i := 0; i < s.NumLevels(); i++ {
			for j := 0; j < s.NumLevels(); j++ {
				if s.HigherLevel(i, j) {
					fmt.Printf("level %d > level %d\n", i, j)
				}
			}
		}
	case "hasse":
		fmt.Print(hierarchy.AnalyzeRW(g).Hasse())
	case "secure":
		ok, v := hierarchy.Secure(g)
		if ok {
			fmt.Println("secure")
			return
		}
		fmt.Printf("INSECURE: %s can come to know %s\n", g.Name(v.Lower), g.Name(v.Upper))
		os.Exit(1)
	case "audit":
		s := hierarchy.AnalyzeRW(g)
		viols := restrict.NewCombined(s).Audit(g)
		if len(viols) == 0 {
			fmt.Println("clean")
			return
		}
		for _, v := range viols {
			fmt.Printf("violation (%s): %s → %s carries %s\n",
				v.Rule, g.Name(v.Src), g.Name(v.Dst), g.Universe().Name(v.Right))
		}
		os.Exit(1)
	case "render":
		fmt.Print(tgio.Render(g))
	case "json":
		if err := tgio.EncodeJSON(os.Stdout, g); err != nil {
			fail(err)
		}
	case "stats":
		s := tgio.Summarize(g)
		fmt.Printf("subjects %d  objects %d  explicit edges %d  implicit edges %d\n",
			s.Subjects, s.Objects, s.ExplicitEdges, s.ImplicitEdges)
		for _, name := range []string{"r", "w", "t", "g"} {
			fmt.Printf("  %s edges: %d\n", name, s.PerRight[name])
		}
	case "profile":
		if len(args) != 2 {
			usage()
		}
		v := lookupVertex(g, args[1])
		profile, err := analysis.ProfileObs(g, v, mkProbe("profile"), bud)
		checkBudget(err)
		for _, a := range profile {
			marker := "acquirable"
			if a.Held {
				marker = "held"
			}
			fmt.Printf("%s to %-14s %s\n", g.Universe().Name(a.Right), g.Name(a.Target), marker)
		}
		report()
	default:
		usage()
	}
}

func load(file string) *graph.Graph {
	in := os.Stdin
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	g, err := tgio.Parse(in)
	if err != nil {
		fail(err)
	}
	return g
}

func lookupRight(g *graph.Graph, name string) rights.Right {
	r, ok := g.Universe().Lookup(name)
	if !ok {
		fail(fmt.Errorf("unknown right %q", name))
	}
	return r
}

func lookupVertex(g *graph.Graph, name string) graph.ID {
	v, ok := g.Lookup(name)
	if !ok {
		fail(fmt.Errorf("unknown vertex %q", name))
	}
	return v
}

func boolOut(args []string, b bool) {
	fmt.Printf("%s = %v\n", strings.Join(args, " "), b)
	if !b {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tgquery:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tgquery [-f graph.tg] [-trace] [-timeout d] [-max-visited n] <query>
queries:
  can.share <right> <x> <y>      can.know <x> <y>     can.know.f <x> <y>
  can.steal <right> <x> <y>      explain.share <right> <x> <y>
  explain.know <x> <y>           conspirators <x> <y>
  profile <x> | trace.share <right> <x> <y>
  islands | levels | hasse | secure | audit | render | json | stats
  specimens   (list built-in paper figures; use with -specimen <name>)`)
	os.Exit(2)
}
