// Command tgtop is a terminal dashboard for a takegrant fleet: point it
// at every node — leader, replicas, shard peers — and it repaints one
// row per node with the numbers an operator reaches for first: request
// rate, windowed p50/p99 latency, error rate, query-cache hit rate,
// replication lag, and namespace spread.
//
// The latency quantiles are computed the only way that is honest across
// a fleet: each poll scrapes the node's /metrics histogram buckets
// (takegrant_request_latency_seconds), subtracts the previous scrape's
// buckets, and interpolates quantiles inside the windowed distribution.
// Because the buckets are mergeable counters this also works across
// nodes — the FLEET row is the bucket-sum of every node, a quantile no
// amount of per-node p99 averaging could produce correctly.
//
// /stats supplies the rest: per-route counts and status classes for the
// rate and error columns, cache counters, revision, namespaces, replica
// lag and the last replication error (shown under the table, since a
// dead leader is something tgtop must say in words, not hide in a
// column).
//
// Usage:
//
//	tgtop -nodes http://a:8080,http://b:8080 [-interval 2s]
//	tgtop -nodes http://leader:8080 -once        # one plain-text frame
//
// -once prints a single frame without ANSI control sequences and exits —
// the scriptable mode CI smoke tests run. The exit status is 0 when at
// least one node answered and 1 when the whole fleet was unreachable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"takegrant/internal/obs"
	"takegrant/internal/service"
)

// nodeSample is one poll of one node: its /stats document plus the
// scraped latency distribution, stamped so rates have a denominator.
type nodeSample struct {
	when  time.Time
	stats service.Stats
	dist  obs.BucketDist
	err   error
}

// requests sums the per-route counters; errs sums the 4xx and 5xx
// classes — the numerators of the RATE and ERR% columns.
func (s *nodeSample) requests() (total, errs uint64) {
	for _, rt := range s.stats.Routes {
		total += rt.Count
		errs += rt.ByClass["4xx"] + rt.ByClass["5xx"]
	}
	return total, errs
}

func poll(client *http.Client, base string) *nodeSample {
	s := &nodeSample{when: time.Now()}
	resp, err := client.Get(base + "/stats")
	if err == nil {
		err = json.NewDecoder(resp.Body).Decode(&s.stats)
		resp.Body.Close()
	}
	if err != nil {
		s.err = fmt.Errorf("stats: %w", err)
		return s
	}
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		s.err = fmt.Errorf("metrics: %w", err)
		return s
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		s.err = fmt.Errorf("metrics: %w", err)
		return s
	}
	fams, err := obs.ParseProm(string(body))
	if err != nil {
		s.err = fmt.Errorf("metrics: %w", err)
		return s
	}
	s.dist = obs.HistogramDist(fams, "takegrant_request_latency_seconds",
		func(map[string]string) bool { return true })
	return s
}

// window subtracts an earlier cumulative distribution from a later one,
// yielding the distribution of just the samples between the two scrapes.
// Buckets appear in a scrape only once occupied, so prev's bounds are a
// subset of cur's; a bound cur has and prev lacks contributes prev's
// cumulative count at the nearest lower bound.
func window(cur, prev obs.BucketDist) obs.BucketDist {
	if prev.Count == 0 {
		return cur
	}
	out := obs.BucketDist{
		Les:   cur.Les,
		Cums:  make([]uint64, len(cur.Cums)),
		Sum:   cur.Sum - prev.Sum,
		Count: cur.Count - prev.Count,
	}
	j := -1 // index of the largest prev bound ≤ cur.Les[i]
	for i, le := range cur.Les {
		for j+1 < len(prev.Les) && prev.Les[j+1] <= le {
			j++
		}
		var p uint64
		if j >= 0 {
			p = prev.Cums[j]
		}
		if cur.Cums[i] > p {
			out.Cums[i] = cur.Cums[i] - p
		}
	}
	return out
}

func fmtDur(seconds float64) string {
	switch {
	case seconds <= 0:
		return "-"
	case seconds < 1e-3:
		return fmt.Sprintf("%.0fµs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.1fms", seconds*1e3)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}

func fmtRate(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func fmtPct(num, den uint64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// row renders one node line from its current sample and (possibly nil)
// previous sample.
func row(w io.Writer, name string, cur, prev *nodeSample) {
	if cur.err != nil {
		fmt.Fprintf(w, "%s\tDOWN\t-\t-\t-\t-\t-\t-\t-\t-\t-\n", name)
		return
	}
	st := &cur.stats
	role := "leader"
	if st.ReadOnly {
		role = "replica"
	}
	if st.Degraded {
		role += "!degraded"
	}

	total, errs := cur.requests()
	rate := -1.0
	dist := cur.dist
	hits, misses := st.Cache.Hits, st.Cache.Misses
	if prev != nil && prev.err == nil {
		pTotal, pErrs := prev.requests()
		if dt := cur.when.Sub(prev.when).Seconds(); dt > 0 && total >= pTotal {
			rate = float64(total-pTotal) / dt
		}
		total, errs = total-pTotal, errs-pErrs
		dist = window(cur.dist, prev.dist)
		hits -= prev.stats.Cache.Hits
		misses -= prev.stats.Cache.Misses
	}

	lag, behind := "-", "-"
	if r := st.Replication; r != nil {
		lag = fmtDur(r.LagSeconds)
		if r.LagSeconds == 0 {
			lag = "0"
		}
		behind = fmt.Sprint(r.BehindRecords)
	}
	nsCol := "1"
	if len(st.Namespaces) > 0 {
		nsCol = fmt.Sprint(len(st.Namespaces))
	}
	fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
		name, role, st.Revision, nsCol,
		fmtRate(rate),
		fmtDur(dist.Quantile(0.50)), fmtDur(dist.Quantile(0.99)),
		fmtPct(errs, total),
		fmtPct(hits, hits+misses),
		lag, behind,
	)
}

// frame renders one full dashboard frame into w.
func frame(w io.Writer, nodes []string, cur, prev map[string]*nodeSample) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROLE\tREV\tNS\tREQ/S\tP50\tP99\tERR\tQCACHE\tLAG\tBEHIND")
	up := 0
	fleet := obs.BucketDist{}
	for _, n := range nodes {
		c := cur[n]
		row(tw, n, c, prev[n])
		if c.err == nil {
			up++
			d := c.dist
			if p := prev[n]; p != nil && p.err == nil {
				d = window(c.dist, p.dist)
			}
			fleet.Merge(d)
		}
	}
	if len(nodes) > 1 {
		fmt.Fprintf(tw, "FLEET\t%d/%d up\t\t\t\t%s\t%s\t\t\t\t\n",
			up, len(nodes), fmtDur(fleet.Quantile(0.50)), fmtDur(fleet.Quantile(0.99)))
	}
	tw.Flush()

	// Problems get sentences, not columns.
	var notes []string
	for _, n := range nodes {
		c := cur[n]
		if c.err != nil {
			notes = append(notes, fmt.Sprintf("%s: %v", n, c.err))
		} else if r := c.stats.Replication; r != nil && r.LastError != "" {
			notes = append(notes, fmt.Sprintf("%s: replication: %s (%d errors)", n, r.LastError, r.Errors))
		}
		if c.err == nil && c.stats.Degraded {
			notes = append(notes, fmt.Sprintf("%s: journal degraded — mutations answer 503", n))
		}
	}
	sort.Strings(notes)
	for _, note := range notes {
		fmt.Fprintln(w, "  ! "+note)
	}
}

func main() {
	var (
		nodesFlag = flag.String("nodes", "http://localhost:8080", "comma-separated base URLs of every fleet node")
		interval  = flag.Duration("interval", 2*time.Second, "poll and repaint interval")
		timeout   = flag.Duration("timeout", 3*time.Second, "per-request timeout")
		once      = flag.Bool("once", false, "print one plain frame and exit (no ANSI; for scripts and CI)")
	)
	flag.Parse()
	var nodes []string
	for _, n := range strings.Split(*nodesFlag, ",") {
		if n = strings.TrimRight(strings.TrimSpace(n), "/"); n != "" {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "tgtop: -nodes is empty")
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}

	pollAll := func() map[string]*nodeSample {
		out := make(map[string]*nodeSample, len(nodes))
		type res struct {
			node string
			s    *nodeSample
		}
		ch := make(chan res, len(nodes))
		for _, n := range nodes {
			go func(n string) { ch <- res{n, poll(client, n)} }(n)
		}
		for range nodes {
			r := <-ch
			out[r.node] = r.s
		}
		return out
	}

	if *once {
		cur := pollAll()
		frame(os.Stdout, nodes, cur, nil)
		for _, s := range cur {
			if s.err == nil {
				return
			}
		}
		os.Exit(1)
	}

	var prev map[string]*nodeSample
	for {
		cur := pollAll()
		// Repaint: home the cursor, draw, clear whatever the previous
		// frame left below.
		fmt.Print("\x1b[H")
		var b strings.Builder
		fmt.Fprintf(&b, "tgtop — %d node(s), every %s, %s\x1b[K\n\n",
			len(nodes), *interval, time.Now().Format("15:04:05"))
		frame(&b, nodes, cur, prev)
		fmt.Print(strings.ReplaceAll(b.String(), "\n", "\x1b[K\n"))
		fmt.Print("\x1b[J")
		prev = cur
		time.Sleep(*interval)
	}
}
