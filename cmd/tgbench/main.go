// Command tgbench regenerates the paper's tables and figures as
// experiment reports (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	tgbench                 run every experiment, print text tables
//	tgbench -e E6,E11       run selected experiments
//	tgbench -markdown       emit GitHub-flavoured markdown (EXPERIMENTS.md)
//	tgbench -ablations      also run the design-choice ablations
//	tgbench -list           list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"takegrant/internal/experiments"
)

func main() {
	var (
		sel       = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		markdown  = flag.Bool("markdown", false, "emit markdown instead of text")
		ablations = flag.Bool("ablations", false, "also run design-choice ablations")
		list      = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			t, _ := experiments.Run(id)
			fmt.Printf("%-4s %s\n", id, t.Title)
		}
		return
	}

	ids := experiments.IDs()
	if *sel != "" {
		ids = strings.Split(*sel, ",")
	}
	failed := 0
	for _, id := range ids {
		t, ok := experiments.Run(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "tgbench: unknown experiment %q\n", id)
			failed++
			continue
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.Format())
		}
		if !t.Pass {
			failed++
		}
	}
	if *ablations {
		printAblations(*markdown)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tgbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func printAblations(markdown bool) {
	header := "Ablations (DESIGN.md §5)"
	if markdown {
		fmt.Printf("### %s\n\n", header)
		fmt.Println("| ablation | scale | variant A | variant B | agree |")
		fmt.Println("| --- | --- | --- | --- | --- |")
	} else {
		fmt.Println(header)
	}
	row := func(name, scale, a, b, agree string) {
		if markdown {
			fmt.Printf("| %s | %s | %s | %s | %s |\n", name, scale, a, b, agree)
		} else {
			fmt.Printf("  %-34s scale=%-3s A=%-12s B=%-12s agree=%s\n", name, scale, a, b, agree)
		}
	}
	for _, scale := range []int{4, 8} {
		scc, pair, agree := experiments.AblationLevels(scale)
		row("levels: SCC vs pairwise", fmt.Sprint(scale), scc.String(), pair.String(), fmt.Sprint(agree))
		nfa, dfa, agree2 := experiments.AblationRelang(scale)
		row("search: NFA vs DFA product", fmt.Sprint(scale), nfa.String(), dfa.String(), fmt.Sprint(agree2))
		inc, re := experiments.AblationIncremental(scale)
		row("guard: incremental vs re-audit", fmt.Sprint(scale), inc.String(), re.String(), "-")
		lazy, eager, agree3 := experiments.AblationClosure(scale)
		row("can.know.f: lazy vs eager closure", fmt.Sprint(scale), lazy.String(), eager.String(), fmt.Sprint(agree3))
	}
	if markdown {
		fmt.Println()
	}
}
