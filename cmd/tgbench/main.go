// Command tgbench regenerates the paper's tables and figures as
// experiment reports (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	tgbench                 run every experiment, print text tables
//	tgbench -e E6,E11       run selected experiments
//	tgbench -markdown       emit GitHub-flavoured markdown (EXPERIMENTS.md)
//	tgbench -json           emit machine-readable JSON reports
//	tgbench -ablations      also run the design-choice ablations
//	tgbench -list           list experiment IDs and titles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"takegrant/internal/experiments"
)

// report is the -json shape for one experiment: the regenerated table plus
// how long the reconstruction took.
type report struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Claim      string     `json:"claim"`
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
	Pass       bool       `json:"pass"`
	Notes      []string   `json:"notes,omitempty"`
	DurationUs float64    `json:"duration_us"`
}

func main() {
	var (
		sel       = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		markdown  = flag.Bool("markdown", false, "emit markdown instead of text")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON reports")
		ablations = flag.Bool("ablations", false, "also run design-choice ablations")
		list      = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			t, _ := experiments.Run(id)
			fmt.Printf("%-4s %s\n", id, t.Title)
		}
		return
	}

	ids := experiments.IDs()
	if *sel != "" {
		ids = strings.Split(*sel, ",")
	}
	failed := 0
	var reports []report
	for _, id := range ids {
		start := time.Now()
		t, ok := experiments.Run(strings.TrimSpace(id))
		elapsed := time.Since(start)
		if !ok {
			fmt.Fprintf(os.Stderr, "tgbench: unknown experiment %q\n", id)
			failed++
			continue
		}
		switch {
		case *jsonOut:
			reports = append(reports, report{
				ID: t.ID, Title: t.Title, Claim: t.Claim,
				Columns: t.Columns, Rows: t.Rows, Pass: t.Pass, Notes: t.Notes,
				DurationUs: float64(elapsed) / float64(time.Microsecond),
			})
		case *markdown:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.Format())
		}
		if !t.Pass {
			failed++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "tgbench:", err)
			os.Exit(2)
		}
	}
	if *ablations {
		printAblations(*markdown)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tgbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

func printAblations(markdown bool) {
	header := "Ablations (DESIGN.md §5)"
	if markdown {
		fmt.Printf("### %s\n\n", header)
		fmt.Println("| ablation | scale | variant A | variant B | agree |")
		fmt.Println("| --- | --- | --- | --- | --- |")
	} else {
		fmt.Println(header)
	}
	row := func(name, scale, a, b, agree string) {
		if markdown {
			fmt.Printf("| %s | %s | %s | %s | %s |\n", name, scale, a, b, agree)
		} else {
			fmt.Printf("  %-34s scale=%-3s A=%-12s B=%-12s agree=%s\n", name, scale, a, b, agree)
		}
	}
	for _, scale := range []int{4, 8} {
		scc, pair, agree := experiments.AblationLevels(scale)
		row("levels: SCC vs pairwise", fmt.Sprint(scale), scc.String(), pair.String(), fmt.Sprint(agree))
		nfa, dfa, agree2 := experiments.AblationRelang(scale)
		row("search: NFA vs DFA product", fmt.Sprint(scale), nfa.String(), dfa.String(), fmt.Sprint(agree2))
		inc, re := experiments.AblationIncremental(scale)
		row("guard: incremental vs re-audit", fmt.Sprint(scale), inc.String(), re.String(), "-")
		lazy, eager, agree3 := experiments.AblationClosure(scale)
		row("can.know.f: lazy vs eager closure", fmt.Sprint(scale), lazy.String(), eager.String(), fmt.Sprint(agree3))
	}
	if markdown {
		fmt.Println()
	}
}
