// Command tgserve runs the Take-Grant protection system as an HTTP
// reference monitor: one process owns the graph, every mutation passes
// the combined no-read-up/no-write-down restriction, and clients query
// the model's decision procedures by vertex name. See the service package
// for the routes.
//
// Observability: GET /stats reports query-cache hit/miss/eviction
// counters, per-route request counts and latency quantiles, the current
// graph revision and size; GET /metrics serves the same counters plus
// per-phase decision-procedure timings in Prometheus text exposition
// format; the /stats snapshot is also published as the expvar "takegrant"
// alongside the runtime's memstats at GET /debug/vars. Every request is
// logged as one JSON line on stderr carrying the trace ID echoed in the
// X-Trace-Id response header. -pprof additionally mounts the runtime
// profiler under /debug/pprof/.
//
// Usage:
//
//	tgserve -addr :8080 [-specimen fig61 | -f graph.tg] [-pprof]
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"strings"

	"takegrant/internal/service"
	"takegrant/internal/specimens"
	"takegrant/internal/tgio"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		spec    = flag.String("specimen", "", "preload a built-in paper figure")
		file    = flag.String("f", "", "preload a .tg graph file")
		demo    = flag.Bool("demo", false, "serve one in-process demo request and exit")
		profile = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		quiet   = flag.Bool("quiet", false, "suppress per-request structured logs")
	)
	flag.Parse()

	srv := service.New()
	if !*quiet {
		srv.SetLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	}
	expvar.Publish("takegrant", expvar.Func(func() any { return srv.Stats() }))
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	if *profile {
		// Opt-in only: the profiler exposes stacks and heap contents, which
		// a reference monitor should not serve by default.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	handler := http.Handler(mux)
	if *spec != "" || *file != "" {
		var src string
		if *spec != "" {
			var err error
			src, err = specimens.Source(*spec)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			data, err := os.ReadFile(*file)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := tgio.ParseString(string(data)); err != nil {
				log.Fatal(err)
			}
			src = string(data)
		}
		req, _ := http.NewRequest(http.MethodPut, "/graph", strings.NewReader(src))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			log.Fatalf("preload failed: %s", rec.Body.String())
		}
		log.Printf("preloaded graph: %s", strings.TrimSpace(rec.Body.String()))
	}
	if *demo {
		req, _ := http.NewRequest(http.MethodGet, "/render", nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		fmt.Print(rec.Body.String())
		return
	}
	log.Printf("takegrant reference monitor listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}
