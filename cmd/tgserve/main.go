// Command tgserve runs the Take-Grant protection system as an HTTP
// reference monitor: one process owns the graph, every mutation passes
// the combined no-read-up/no-write-down restriction, and clients query
// the model's decision procedures by vertex name. See the service package
// for the routes.
//
// Fault tolerance: with -data DIR every accepted mutation is fsync'd to a
// write-ahead log before its 200 and periodically compacted into a
// snapshot, so a crash — up to and including kill -9 — loses nothing that
// was acknowledged; on restart the graph, revision and hierarchy are
// rebuilt from snapshot plus log. -query-timeout and -max-visited bound
// each decision procedure's work (exhaustion is a 503, never a wrong
// verdict), -max-inflight sheds excess heavy queries with 429, handler
// panics are caught and answered with a 500 naming the trace ID, and
// SIGINT/SIGTERM drain in-flight requests then write a final snapshot.
//
// Scale-out: every graph route takes ?ns=<name>, an isolated namespace
// with its own graph, revision, hierarchy and journal directory. With
// -replica-of URL the process runs as a read replica: it tails the
// leader's write-ahead logs (all namespaces), replays each record
// through the same guarded path the leader ran, serves every read route,
// and answers mutations with 503 read_only. With -peers (a comma-
// separated list of every node's base URL, this one included as
// -advertise) the process owns only the namespaces a consistent-hash
// ring assigns it and redirects the rest with 307.
//
// Observability: GET /stats reports query-cache hit/miss/eviction
// counters, per-route request counts with interpolated latency quantiles
// and a status-class breakdown, the current graph revision and size,
// plus panic/shed/budget-exhausted and journal counters; GET /metrics
// serves Prometheus text exposition with real latency histogram
// families (takegrant_request_latency_seconds_bucket per route, status
// class and namespace — wait-free log-bucketed atomic counters that
// merge across nodes) alongside per-phase decision-procedure timings;
// the /stats snapshot is also published as the expvar "takegrant" at
// GET /debug/vars. Every request joins the caller's W3C traceparent (or
// legacy X-Trace-Id) or mints a fresh trace, echoes both headers, and
// logs one JSON line on stderr with the trace and span IDs; shard
// redirects and replica polls propagate the trace, so one logical query
// carries one trace ID on every node. A fixed-size flight recorder
// (-flight-size, default 256) keeps the most recent structured events —
// request summaries, guard verdicts, replication rounds, journal
// faults, panics — replayed at GET /debug/flight, dumped to stderr on
// any caught panic and on SIGQUIT. cmd/tgtop renders a fleet of these
// servers as a live dashboard. -pprof additionally mounts the runtime
// profiler under /debug/pprof/.
//
// Usage:
//
//	tgserve -addr :8080 [-data DIR] [-specimen fig61 | -f graph.tg]
//	        [-query-timeout 5s] [-max-visited 1000000] [-max-inflight 32]
//	        [-batch-workers 8] [-pprof]
//	        [-replica-of http://leader:8080 [-replica-poll 500ms]]
//	        [-peers http://a:8080,http://b:8080 -advertise http://a:8080]
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"takegrant/internal/health"
	"takegrant/internal/service"
	"takegrant/internal/specimens"
	"takegrant/internal/tgio"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "", "data directory for the crash-safe journal (empty = in-memory only)")
		spec     = flag.String("specimen", "", "preload a built-in paper figure")
		file     = flag.String("f", "", "preload a .tg graph file")
		demo     = flag.Bool("demo", false, "serve one in-process demo request and exit")
		profile  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		quiet    = flag.Bool("quiet", false, "suppress per-request structured logs")
		qTimeout = flag.Duration("query-timeout", 0, "per-query work-budget deadline (0 = none)")
		maxVisit = flag.Int64("max-visited", 0, "per-query cap on visited product states (0 = unlimited)")
		inflight = flag.Int("max-inflight", 0, "max concurrent heavy queries before shedding with 429 (0 = unlimited)")
		batchW   = flag.Int("batch-workers", 0, "worker pool one POST /query/batch fans its items across (0 = GOMAXPROCS)")
		hierW    = flag.Int("hier-workers", 0, "worker pool the hierarchy engine fans derivation across (0 = GOMAXPROCS)")
		snapN    = flag.Int("snapshot-every", 0, "journaled mutations between snapshots (0 = default)")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown drain period for in-flight requests")
		replica  = flag.String("replica-of", "", "run as a read replica of this leader base URL (mutations answer 503)")
		replPoll = flag.Duration("replica-poll", 500*time.Millisecond, "replication poll interval")
		peers    = flag.String("peers", "", "comma-separated base URLs of every shard peer (enables namespace sharding)")
		adv      = flag.String("advertise", "", "this node's base URL as it appears in -peers")
		flightN  = flag.Int("flight-size", 0, "flight recorder ring size (0 = default, negative = disabled)")
		promData = flag.String("promote-data", "", "data directory POST /admin/promote opens the new leader journal in (replicas)")
		probeInt = flag.Duration("probe-interval", time.Second, "peer health probe interval (with -peers)")
		probeTO  = flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
		probeN   = flag.Int("probe-fails", 3, "consecutive probe failures before a peer is considered down")
		failover = flag.String("failover-reads", "", "base URL reads for a down peer's namespaces are 307'd to (a full replica)")
		scrubInt = flag.Duration("scrub-interval", time.Minute, "anti-entropy scrubber cadence (0 = disabled)")
	)
	flag.Parse()
	if *replica != "" && *data != "" {
		log.Fatal("-data and -replica-of are mutually exclusive: a replica's durability is the leader's journal")
	}
	if *replica != "" && (*spec != "" || *file != "") {
		log.Fatal("-replica-of cannot preload a graph: a replica's state comes from its leader")
	}
	if (*peers == "") != (*adv == "") {
		log.Fatal("-peers and -advertise go together")
	}

	srv := service.NewWith(service.Config{
		QueryTimeout:     *qTimeout,
		MaxVisited:       *maxVisit,
		MaxInFlight:      *inflight,
		SnapshotEvery:    *snapN,
		BatchWorkers:     *batchW,
		HierarchyWorkers: *hierW,
		FlightSize:       *flightN,
		PromoteDataDir:   *promData,
	})
	if !*quiet {
		srv.SetLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	}
	recovered := false
	if *data != "" {
		var err error
		recovered, err = srv.AttachJournal(*data)
		if err != nil {
			log.Fatal(err)
		}
		if recovered {
			st := srv.Stats()
			log.Printf("recovered state from %s: revision %d, %d vertices, %d replayed records",
				*data, st.Revision, st.Vertices, st.Journal.Recovered)
		}
	}
	if *replica != "" {
		if err := srv.StartReplica(*replica, *replPoll); err != nil {
			log.Fatal(err)
		}
		log.Printf("replicating from %s every %s; mutations answer 503 read_only", *replica, *replPoll)
	}
	expvar.Publish("takegrant", expvar.Func(func() any { return srv.Stats() }))
	// With peers configured, watch everyone but ourselves: ShardRedirect
	// consults the prober before 307-ing a namespace to its owner, so a
	// dead peer turns into a read failover or a 503 + Retry-After instead
	// of a client-side connection error.
	var prober *health.Prober
	if *peers != "" {
		var watch []string
		self := strings.TrimRight(*adv, "/")
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(strings.TrimRight(p, "/")); p != "" && p != self {
				watch = append(watch, p)
			}
		}
		if len(watch) > 0 {
			prober = health.New(watch, health.Options{
				Interval:      *probeInt,
				Timeout:       *probeTO,
				FailThreshold: *probeN,
				OnTransition: func(peer string, up bool) {
					log.Printf("peer %s is now up=%v", peer, up)
				},
			})
			prober.Start()
			defer prober.Stop()
			srv.SetHealthProber(prober)
		}
	}
	if *scrubInt > 0 {
		srv.StartScrubber(*scrubInt)
	}
	mux := http.NewServeMux()
	sharded, err := srv.ShardRedirect(*peers, *adv, *failover, srv.Handler())
	if err != nil {
		log.Fatal(err)
	}
	mux.Handle("/", sharded)
	mux.Handle("/debug/vars", expvar.Handler())
	if *profile {
		// Opt-in only: the profiler exposes stacks and heap contents, which
		// a reference monitor should not serve by default.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	handler := http.Handler(mux)
	switch {
	case recovered && (*spec != "" || *file != ""):
		// The journal is the source of truth once it holds state: silently
		// replacing recovered mutations with a preload would discard
		// acknowledged history.
		log.Printf("ignoring -specimen/-f: %s already holds state", *data)
	case *spec != "" || *file != "":
		var src string
		if *spec != "" {
			var err error
			src, err = specimens.Source(*spec)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			data, err := os.ReadFile(*file)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := tgio.ParseString(string(data)); err != nil {
				log.Fatal(err)
			}
			src = string(data)
		}
		req, _ := http.NewRequest(http.MethodPut, "/graph", strings.NewReader(src))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			log.Fatalf("preload failed: %s", rec.Body.String())
		}
		log.Printf("preloaded graph: %s", strings.TrimSpace(rec.Body.String()))
	}
	if *demo {
		req, _ := http.NewRequest(http.MethodGet, "/render", nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		fmt.Print(rec.Body.String())
		return
	}

	// A real http.Server, not ListenAndServe's zero value: header/read/
	// write/idle timeouts so a stalled client cannot pin a connection (and
	// its semaphore slot) forever, and Shutdown for graceful drain.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// SIGQUIT dumps the flight recorder — the last ring-ful of requests,
	// verdicts and faults — to stderr and keeps serving, the classic
	// "what just happened" signal.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			srv.DumpFlight(os.Stderr)
		}
	}()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("takegrant reference monitor listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	log.Printf("shutting down: draining for up to %s", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	// Final snapshot after the drain: the next start replays nothing.
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	log.Printf("shutdown complete")
}
