// Command tgload is an open-loop load driver for tgserve: arrivals come
// from a Poisson process at a fixed offered rate, independent of how
// fast the server answers, so saturation shows up as queueing delay and
// shed 429s instead of the driver politely slowing down (the
// closed-loop coordinated-omission trap). It drives a mixed workload —
// decision-query reads, guarded mutations, batch fan-outs — against a
// world it can also generate and bulk-load in the compact .tgb form.
//
// Generate a world:
//
//	tgload -gen org-chart -n 1000000 -o world.tgb
//
// Drive a server:
//
//	tgload -addr http://localhost:8080 -world world.tgb \
//	       -duration 30s -rate 500 -mix read=0.8,mutate=0.1,batch=0.1
//
// The report is machine-readable JSON on stdout (or -report FILE):
// client-side per-class latency histograms, offered vs completed rates,
// and — when /metrics is scrapeable — exact per-route server-side
// latency deltas over the run, reconstructed from the Prometheus
// exposition with the same promparse the fleet tools use.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"takegrant/internal/obs"
	"takegrant/internal/simulate"
	"takegrant/internal/tgio"
)

func main() {
	var (
		gen    = flag.String("gen", "", "generator mode: scenario (org-chart, doc-share, military, churn); writes a .tgb world to -o and exits")
		nVerts = flag.Int("n", 100000, "generator: target vertex count")
		out    = flag.String("o", "world.tgb", "generator: output path")
		seed   = flag.Int64("seed", 1, "deterministic seed for generation and request sampling")

		addr     = flag.String("addr", "http://127.0.0.1:8080", "server base URL")
		ns       = flag.String("ns", "", "namespace to drive (empty = default)")
		world    = flag.String("world", "", "world file (.tg or .tgb) to PUT before driving; empty drives whatever is installed")
		duration = flag.Duration("duration", 30*time.Second, "soak duration")
		rate     = flag.Float64("rate", 200, "offered request rate per second")
		mix      = flag.String("mix", "read=0.8,mutate=0.1,batch=0.1", "traffic mix as class=weight pairs")
		inflight = flag.Int("max-inflight", 512, "client-side in-flight cap; arrivals past it are counted saturated, never delayed")
		report   = flag.String("report", "", "write the JSON report to this file (default stdout)")
	)
	flag.Parse()

	if *gen != "" {
		if err := runGen(*gen, *nVerts, *seed, *out); err != nil {
			fail(err)
		}
		return
	}
	if *rate <= 0 {
		fail(fmt.Errorf("-rate must be positive"))
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fail(err)
	}
	rep, err := runLoad(loadConfig{
		addr: strings.TrimRight(*addr, "/"), ns: *ns, world: *world,
		duration: *duration, rate: *rate, mix: weights, seed: *seed,
		inflight: *inflight,
	})
	if err != nil {
		fail(err)
	}
	var w io.Writer = os.Stdout
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tgload:", err)
	os.Exit(1)
}

func runGen(scenario string, n int, seed int64, path string) error {
	start := time.Now()
	g, err := simulate.GenerateScenario(simulate.Scenario(scenario), n, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := tgio.EncodeBinary(bw, g); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tgload: %s: %d vertices, %d edges, %d bytes in %s\n",
		path, g.NumVertices(), g.NumEdges(), st.Size(), time.Since(start).Round(time.Millisecond))
	return nil
}

// The driven classes. "read" alternates the single-query decision
// routes, "mutate" creates objects through the §5 guard, "batch" fans 16
// queries over one snapshot.
var classNames = []string{"read", "mutate", "batch"}

func parseMix(s string) (map[string]float64, error) {
	w := make(map[string]float64)
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want class=weight)", part)
		}
		known := false
		for _, c := range classNames {
			known = known || c == k
		}
		if !known {
			return nil, fmt.Errorf("unknown -mix class %q (have %s)", k, strings.Join(classNames, ", "))
		}
		var f float64
		if _, err := fmt.Sscanf(v, "%g", &f); err != nil || f < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", v)
		}
		w[k] = f
		total += f
	}
	if total <= 0 {
		return nil, fmt.Errorf("-mix weights sum to zero")
	}
	for k := range w {
		w[k] /= total
	}
	return w, nil
}

type loadConfig struct {
	addr, ns, world string
	duration        time.Duration
	rate            float64
	mix             map[string]float64
	seed            int64
	inflight        int
}

// classStats is one class's client-side accounting. Latencies cover
// every answered request regardless of status; the status buckets say
// how the answers split.
type classStats struct {
	offered   atomic.Uint64
	completed atomic.Uint64 // 2xx
	refused   atomic.Uint64 // 403: the guard judged, correctly — not an error
	shed      atomic.Uint64 // 429: server load shedding
	errors    atomic.Uint64 // transport failures and any other status
	saturated atomic.Uint64 // arrivals past the client in-flight cap
	hist      obs.Hist
}

// ClassReport is classStats rendered for the JSON report.
type ClassReport struct {
	Offered   uint64  `json:"offered"`
	Completed uint64  `json:"completed"`
	Refused   uint64  `json:"refused,omitempty"`
	Shed      uint64  `json:"shed,omitempty"`
	Errors    uint64  `json:"errors"`
	Saturated uint64  `json:"saturated,omitempty"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
}

// ServerRoute is one route's server-side slice of the run: the request
// count and latency quantiles over exactly this run's window, computed
// by subtracting the before-scrape's cumulative buckets from the
// after-scrape's.
type ServerRoute struct {
	Requests uint64  `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// Report is the tgload run summary.
type Report struct {
	Addr          string                 `json:"addr"`
	NS            string                 `json:"ns,omitempty"`
	World         string                 `json:"world,omitempty"`
	Seed          int64                  `json:"seed"`
	Mix           map[string]float64     `json:"mix"`
	OfferedRate   float64                `json:"offered_rate"`   // the -rate target
	WallSeconds   float64                `json:"wall_seconds"`   // measured soak wall clock
	LoadSeconds   float64                `json:"load_seconds"`   // bulk world load, when -world was given
	ActualOffered float64                `json:"actual_offered"` // arrivals/s actually generated
	CompletedRate float64                `json:"completed_rate"` // 2xx/s
	Classes       map[string]ClassReport `json:"classes"`
	Total         ClassReport            `json:"total"`
	ServerScrape  bool                   `json:"server_scrape"`
	ServerError   string                 `json:"server_error,omitempty"`
	Server        map[string]ServerRoute `json:"server,omitempty"`
}

// reqSpec is one arrival, fully sampled on the pacing goroutine (the
// rng is not concurrency-safe) and executed on a worker.
type reqSpec struct {
	class  string
	method string
	path   string
	body   string
}

type driver struct {
	cfg      loadConfig
	client   *http.Client
	rng      *rand.Rand
	subjects []string
	vertices []string
	classes  map[string]*classStats
	created  atomic.Uint64
}

func runLoad(cfg loadConfig) (*Report, error) {
	d := &driver{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.seed)),
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.inflight,
				MaxIdleConnsPerHost: cfg.inflight,
			},
		},
		classes: make(map[string]*classStats),
	}
	for _, c := range classNames {
		d.classes[c] = &classStats{}
	}
	rep := &Report{
		Addr: cfg.addr, NS: cfg.ns, World: cfg.world, Seed: cfg.seed,
		Mix: cfg.mix, OfferedRate: cfg.rate,
	}

	if cfg.world != "" {
		loadStart := time.Now()
		if err := d.putWorld(cfg.world); err != nil {
			return nil, err
		}
		rep.LoadSeconds = time.Since(loadStart).Seconds()
	}
	if err := d.fetchNames(); err != nil {
		return nil, err
	}
	if len(d.subjects) == 0 {
		return nil, fmt.Errorf("world has no subjects to drive queries from (load one with -world)")
	}

	before, scrapeErr := d.scrape()

	wallStart := time.Now()
	d.drive()
	wall := time.Since(wallStart)

	var after []obs.PromFamily
	if scrapeErr == nil {
		after, scrapeErr = d.scrape()
	}
	if scrapeErr != nil {
		rep.ServerError = scrapeErr.Error()
	} else {
		rep.ServerScrape = true
		rep.Server = serverDelta(before, after)
	}

	rep.WallSeconds = wall.Seconds()
	var total ClassReport
	var totalHist obs.HistSnapshot
	rep.Classes = make(map[string]ClassReport)
	for name, cs := range d.classes {
		snap := cs.hist.Snapshot()
		cr := ClassReport{
			Offered:   cs.offered.Load(),
			Completed: cs.completed.Load(),
			Refused:   cs.refused.Load(),
			Shed:      cs.shed.Load(),
			Errors:    cs.errors.Load(),
			Saturated: cs.saturated.Load(),
			P50Ms:     ms(snap.Quantile(0.50)),
			P90Ms:     ms(snap.Quantile(0.90)),
			P99Ms:     ms(snap.Quantile(0.99)),
			MeanMs:    ms(snap.Mean()),
		}
		if cr.Offered == 0 {
			continue
		}
		rep.Classes[name] = cr
		total.Offered += cr.Offered
		total.Completed += cr.Completed
		total.Refused += cr.Refused
		total.Shed += cr.Shed
		total.Errors += cr.Errors
		total.Saturated += cr.Saturated
		totalHist.Merge(snap)
	}
	total.P50Ms = ms(totalHist.Quantile(0.50))
	total.P90Ms = ms(totalHist.Quantile(0.90))
	total.P99Ms = ms(totalHist.Quantile(0.99))
	total.MeanMs = ms(totalHist.Mean())
	rep.Total = total
	// Arrivals only happen during the pacing window; completions include
	// the drain, so throughput is measured over the full wall clock.
	rep.ActualOffered = float64(total.Offered) / cfg.duration.Seconds()
	rep.CompletedRate = float64(total.Completed) / wall.Seconds()
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// nsParam appends the namespace parameter to a path that already has a
// query string separator decided.
func (d *driver) nsParam(sep string) string {
	if d.cfg.ns == "" {
		return ""
	}
	return sep + "ns=" + url.QueryEscape(d.cfg.ns)
}

// putWorld bulk-loads a world file, sniffing text vs binary to pick the
// media type (a binary body rides the large-cap path).
func (d *driver) putWorld(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	ct := "text/plain"
	if tgio.IsBinary(data) {
		ct = tgio.BinaryContentType
	}
	req, err := http.NewRequest(http.MethodPut, d.cfg.addr+"/graph"+d.nsParam("?"), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ct)
	resp, err := d.client.Do(req)
	if err != nil {
		return fmt.Errorf("load world: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("load world: %d %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// fetchNames pulls the installed world back in binary form and samples
// the name pools queries draw from.
func (d *driver) fetchNames() error {
	resp, err := d.client.Get(d.cfg.addr + "/graph?format=tgb" + d.nsParam("&"))
	if err != nil {
		return fmt.Errorf("fetch world: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch world: %d", resp.StatusCode)
	}
	g, err := tgio.DecodeBinary(bufio.NewReaderSize(resp.Body, 1<<16))
	if err != nil {
		return fmt.Errorf("fetch world: %w", err)
	}
	for _, id := range g.Vertices() {
		d.vertices = append(d.vertices, g.Name(id))
	}
	for _, id := range g.Subjects() {
		d.subjects = append(d.subjects, g.Name(id))
	}
	return nil
}

func (d *driver) scrape() ([]obs.PromFamily, error) {
	resp, err := d.client.Get(d.cfg.addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseProm(string(body))
}

// drive runs the open loop: exponential inter-arrival gaps at the
// offered rate, each arrival dispatched to a worker if the in-flight
// cap allows and counted saturated otherwise — the pacer never waits
// for the server.
func (d *driver) drive() {
	sem := make(chan struct{}, d.cfg.inflight)
	var wg sync.WaitGroup
	deadline := time.Now().Add(d.cfg.duration)
	next := time.Now()
	for {
		gap := time.Duration(d.rng.ExpFloat64() / d.cfg.rate * float64(time.Second))
		next = next.Add(gap)
		if next.After(deadline) {
			break
		}
		time.Sleep(time.Until(next))
		spec := d.sample()
		cs := d.classes[spec.class]
		cs.offered.Add(1)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.execute(cs, spec)
				<-sem
			}()
		default:
			cs.saturated.Add(1)
		}
	}
	wg.Wait()
}

// sample draws one arrival: a class by mix weight, then its parameters
// from the world's name pools.
func (d *driver) sample() reqSpec {
	r := d.rng.Float64()
	class := classNames[0]
	for _, c := range classNames {
		w := d.cfg.mix[c]
		if r < w {
			class = c
			break
		}
		r -= w
	}
	switch class {
	case "mutate":
		x := d.subjects[d.rng.Intn(len(d.subjects))]
		name := fmt.Sprintf("ld_%d", d.created.Add(1))
		body := fmt.Sprintf(`{"op":"create","x":%q,"name":%q,"kind":"object","rights":"r,w"}`, x, name)
		return reqSpec{class: class, method: http.MethodPost, path: "/apply" + d.nsParam("?"), body: body}
	case "batch":
		var b strings.Builder
		b.WriteByte('[')
		for i := 0; i < 16; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(d.queryItem())
		}
		b.WriteByte(']')
		return reqSpec{class: class, method: http.MethodPost, path: "/query/batch" + d.nsParam("?"), body: b.String()}
	default: // read
		x := d.subjects[d.rng.Intn(len(d.subjects))]
		y := d.vertices[d.rng.Intn(len(d.vertices))]
		if d.rng.Intn(2) == 0 {
			return reqSpec{class: class, method: http.MethodGet,
				path: "/query/can-share?right=r&x=" + url.QueryEscape(x) + "&y=" + url.QueryEscape(y) + d.nsParam("&")}
		}
		return reqSpec{class: class, method: http.MethodGet,
			path: "/query/can-know?x=" + url.QueryEscape(x) + "&y=" + url.QueryEscape(y) + d.nsParam("&")}
	}
}

func (d *driver) queryItem() string {
	x := d.subjects[d.rng.Intn(len(d.subjects))]
	y := d.vertices[d.rng.Intn(len(d.vertices))]
	if d.rng.Intn(2) == 0 {
		return fmt.Sprintf(`{"kind":"can-share","right":"r","x":%q,"y":%q}`, x, y)
	}
	return fmt.Sprintf(`{"kind":"can-know","x":%q,"y":%q}`, x, y)
}

func (d *driver) execute(cs *classStats, spec reqSpec) {
	var body io.Reader
	if spec.body != "" {
		body = strings.NewReader(spec.body)
	}
	req, err := http.NewRequest(spec.method, d.cfg.addr+spec.path, body)
	if err != nil {
		cs.errors.Add(1)
		return
	}
	if spec.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := d.client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		cs.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	cs.hist.Observe(elapsed)
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		cs.completed.Add(1)
	case resp.StatusCode == http.StatusForbidden:
		cs.refused.Add(1)
	case resp.StatusCode == http.StatusTooManyRequests:
		cs.shed.Add(1)
	default:
		cs.errors.Add(1)
	}
}

// serverDelta reconstructs per-route request counts and latency
// quantiles over exactly the run window from two /metrics scrapes: the
// cumulative bucket counts of the before-scrape are subtracted from the
// after-scrape's (sound because the buckets are monotone counters).
func serverDelta(before, after []obs.PromFamily) map[string]ServerRoute {
	routes := make(map[string]bool)
	for _, f := range after {
		if f.Name != "takegrant_requests_total" {
			continue
		}
		for _, s := range f.Series {
			if r := s.Labels["route"]; r != "" {
				routes[r] = true
			}
		}
	}
	out := make(map[string]ServerRoute)
	var names []string
	for r := range routes {
		names = append(names, r)
	}
	sort.Strings(names)
	for _, route := range names {
		match := func(labels map[string]string) bool { return labels["route"] == route }
		d := distDelta(
			obs.HistogramDist(after, "takegrant_request_latency_seconds", match),
			obs.HistogramDist(before, "takegrant_request_latency_seconds", match),
		)
		if d.Count == 0 {
			continue
		}
		out[route] = ServerRoute{
			Requests: d.Count,
			P50Ms:    d.Quantile(0.50) * 1e3,
			P99Ms:    d.Quantile(0.99) * 1e3,
		}
	}
	return out
}

// distDelta subtracts an earlier cumulative-bucket scrape from a later
// one of the same series. Buckets occupied before stay occupied after
// (they are counters), so the before bounds are a subset of the after
// bounds; a bound absent from before subtracts its floor.
func distDelta(after, before obs.BucketDist) obs.BucketDist {
	prev := make(map[float64]uint64, len(before.Les))
	for i, le := range before.Les {
		prev[le] = before.Cums[i]
	}
	d := obs.BucketDist{
		Sum:   after.Sum - before.Sum,
		Count: after.Count - before.Count,
	}
	var floor uint64
	for i, le := range after.Les {
		b, ok := prev[le]
		if ok {
			floor = b
		}
		cum := after.Cums[i] - floor
		d.Les = append(d.Les, le)
		d.Cums = append(d.Cums, cum)
	}
	return d
}
