// Command tgdot converts a .tg protection graph to Graphviz DOT (default)
// or a terminal rendering.
//
// Usage:
//
//	tgdot -f graph.tg            # DOT on stdout
//	tgdot -f graph.tg -ascii     # terminal rendering
//	tgdot -f graph.tg -title hi  # DOT graph title
package main

import (
	"flag"
	"fmt"
	"os"

	"takegrant/internal/tgio"
)

func main() {
	file := flag.String("f", "", "graph file (.tg or .tgb); stdin when absent")
	ascii := flag.Bool("ascii", false, "terminal rendering instead of DOT")
	title := flag.String("title", "takegrant", "DOT graph title")
	flag.Parse()

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tgdot:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	g, err := tgio.ParseAny(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgdot:", err)
		os.Exit(2)
	}
	if *ascii {
		fmt.Print(tgio.Render(g))
		return
	}
	fmt.Print(tgio.DOT(g, *title))
}
