// Command tgrepl is an interactive shell for exploring Take-Grant
// protection systems: build graphs, apply (optionally guarded) rules, and
// query the model's decision problems with undo and derivation
// explanations. Type "help" at the prompt.
package main

import (
	"fmt"
	"os"

	"takegrant/internal/repl"
)

func main() {
	if err := repl.Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tgrepl:", err)
		os.Exit(1)
	}
}
