// Command tgsim runs adversarial simulations against generated
// hierarchical protection systems: fully corrupt subject populations
// attack a classification hierarchy, with or without the paper's combined
// restriction guarding the de jure rules.
//
// Usage:
//
//	tgsim -levels 3 -subjects 2 -docs 1 -cross 4 -trials 20 -steps 150
//	tgsim -guard=false     # unrestricted baseline
//
// The tool prints the breach rate, mean steps to breach, and guard
// refusal counts; with -compare it runs both configurations side by side
// (experiment E11).
package main

import (
	"flag"
	"fmt"
	"os"

	"takegrant/internal/restrict"
	"takegrant/internal/simulate"
)

func main() {
	var (
		levels   = flag.Int("levels", 3, "hierarchy levels")
		subjects = flag.Int("subjects", 2, "subjects per level")
		docs     = flag.Int("docs", 1, "documents per level")
		extra    = flag.Int("extra", 4, "benign extra rights")
		cross    = flag.Int("cross", 4, "dangerous cross-level take/grant edges")
		trials   = flag.Int("trials", 20, "Monte-Carlo trials")
		steps    = flag.Int("steps", 150, "adversary steps per trial")
		seed     = flag.Int64("seed", 1, "generator seed")
		guard    = flag.Bool("guard", true, "apply the combined restriction")
		compare  = flag.Bool("compare", false, "run guarded and unguarded side by side")
	)
	flag.Parse()

	spec := simulate.Spec{
		Levels:           *levels,
		SubjectsPerLevel: *subjects,
		DocsPerLevel:     *docs,
		ExtraRights:      *extra,
		CrossTG:          *cross,
		Seed:             *seed,
	}
	combined := func(w *simulate.World) restrict.Restriction {
		return restrict.NewCombined(w.S)
	}
	run := func(name string, mk func(*simulate.World) restrict.Restriction) simulate.Summary {
		sum := simulate.MonteCarlo(spec, mk, *trials, *steps)
		fmt.Printf("%-22s trials=%d breach=%.0f%% meanBreachStep=%.1f applied=%.1f refused=%.1f\n",
			name, sum.Trials, 100*sum.BreachRate(), sum.MeanBreachAt, sum.MeanApplied, sum.MeanRefused)
		return sum
	}
	if *compare {
		u := run("unrestricted", nil)
		g := run("combined restriction", combined)
		if g.Breaches > 0 {
			fmt.Fprintln(os.Stderr, "tgsim: SOUNDNESS VIOLATION — guarded trials breached")
			os.Exit(1)
		}
		if u.Breaches == 0 {
			fmt.Println("note: no unrestricted breaches — increase -cross or -steps")
		}
		return
	}
	if *guard {
		sum := run("combined restriction", combined)
		if sum.Breaches > 0 {
			os.Exit(1)
		}
		return
	}
	run("unrestricted", nil)
}
