package takegrant_test

import (
	"fmt"

	"takegrant"
)

// The paper's Figure 6.1: a lower-level subject steals read access to a
// secret through a chain of takes — with de jure rules alone.
func ExampleCanShare() {
	g, _ := takegrant.LoadSpecimen("fig61")
	low, _ := g.Lookup("low")
	secret, _ := g.Lookup("secret")
	fmt.Println(takegrant.CanShare(g, takegrant.Read, low, secret))
	// Output: true
}

// Every positive decision synthesises into a replayable derivation.
func ExampleExplainShare() {
	g, _ := takegrant.LoadSpecimen("fig61")
	low, _ := g.Lookup("low")
	secret, _ := g.Lookup("secret")
	d, _ := takegrant.ExplainShare(g, takegrant.Read, low, secret)
	out, _ := takegrant.Trace(g, d)
	fmt.Print(out)
	// Output:  1. low takes (r to secret) from mid             +low→secret r
}

// A guarded System refuses the same theft (restriction (a): no read up).
func ExampleNewSystem() {
	g, _ := takegrant.LoadSpecimen("fig61")
	low, _ := g.Lookup("low")
	mid, _ := g.Lookup("mid")
	secret, _ := g.Lookup("secret")
	sys := takegrant.NewSystem(g)
	err := sys.Apply(takegrant.TakeRule(low, mid, secret, takegrant.Of(takegrant.Read)))
	fmt.Println(err != nil)
	// Output: true
}

// Hierarchies built with BuildLinear are conspiracy-immune (Theorem 4.3).
func ExampleBuildLinear() {
	c, _ := takegrant.BuildLinear(3, 2)
	low := c.Members["L1"][0]
	top := c.Bulletin["L3"]
	fmt.Println(takegrant.CanKnow(c.G, low, top))
	high := c.Members["L3"][0]
	fmt.Println(takegrant.CanKnow(c.G, high, c.Bulletin["L1"]))
	// Output:
	// false
	// true
}

// MinConspirators counts the subjects a de facto flow needs.
func ExampleMinConspirators() {
	g := takegrant.NewGraph(nil)
	x := g.MustSubject("x")
	m := g.MustObject("mailbox")
	s := g.MustSubject("s")
	y := g.MustObject("secret")
	g.AddExplicit(x, m, takegrant.Of(takegrant.Read))
	g.AddExplicit(s, m, takegrant.Of(takegrant.Write))
	g.AddExplicit(s, y, takegrant.Of(takegrant.Read))
	n, _, _ := takegrant.MinConspirators(g, x, y)
	fmt.Println(n)
	// Output: 2
}
