package takegrant

import (
	"strings"
	"testing"
)

// TestQuickstart exercises the README's quick-start path end to end.
func TestQuickstart(t *testing.T) {
	c, err := BuildLinear(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(c.G)
	low := c.Members["L1"][0]
	top := c.Bulletin["L3"]
	if sys.CanKnow(low, top) {
		t.Error("hierarchy leaks downward")
	}
	high := c.Members["L3"][0]
	if !sys.CanKnow(high, c.Bulletin["L1"]) {
		t.Error("hierarchy blocks upward reads")
	}
	if ok, v := sys.Secure(); !ok {
		t.Errorf("insecure: %v", v)
	}
}

func TestPublicRuleFlow(t *testing.T) {
	g := NewGraph(nil)
	x := g.MustSubject("x")
	v := g.MustObject("v")
	y := g.MustObject("y")
	g.AddExplicit(x, v, Of(Take))
	g.AddExplicit(v, y, Of(Read))
	if !CanShare(g, Read, x, y) {
		t.Fatal("CanShare failed")
	}
	d, err := ExplainShare(g, Read, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Replay(g); err != nil {
		t.Fatal(err)
	}
	if !g.Explicit(x, y).Has(Read) {
		t.Error("explain/replay did not deliver")
	}
}

func TestGuardedSystemRefusesReadUp(t *testing.T) {
	c, err := BuildLinear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	c.G.AddExplicit(low, high, Of(Take))
	sys := NewSystem(c.G)
	if err := sys.Apply(TakeRule(low, high, c.Bulletin["L2"], Of(Read))); err == nil {
		t.Error("read-up take allowed")
	}
	if err := sys.Apply(TakeRule(low, high, c.Bulletin["L2"], Of(Write))); err != nil {
		t.Errorf("write-up refused: %v", err)
	}
	applied, refused := sys.Stats()
	if applied != 1 || refused != 1 {
		t.Errorf("stats = %d applied %d refused", applied, refused)
	}
	if len(sys.Audit()) != 0 {
		t.Error("guarded system audits dirty")
	}
}

func TestIORoundTripPublic(t *testing.T) {
	g, err := ParseGraphString("subject a\nobject b\nedge a b r,w\n")
	if err != nil {
		t.Fatal(err)
	}
	text := WriteGraph(g)
	if !strings.Contains(text, "edge a b r,w") {
		t.Errorf("WriteGraph = %q", text)
	}
	if !strings.Contains(DOT(g, "t"), "digraph") {
		t.Error("DOT broken")
	}
	if !strings.Contains(Render(g), "● a") {
		t.Error("Render broken")
	}
}

func TestMinConspiratorsPublic(t *testing.T) {
	g := NewGraph(nil)
	x := g.MustSubject("x")
	y := g.MustObject("y")
	g.AddExplicit(x, y, Of(Read))
	n, chain, ok := MinConspirators(g, x, y)
	if !ok || n != 1 || len(chain) != 1 {
		t.Errorf("= %d %v %v", n, chain, ok)
	}
}

func TestCanStealPublic(t *testing.T) {
	g := NewGraph(nil)
	thief := g.MustSubject("thief")
	owner := g.MustSubject("owner")
	secret := g.MustObject("secret")
	g.AddExplicit(thief, owner, Of(Take))
	g.AddExplicit(owner, secret, Of(Read))
	if !CanSteal(g, Read, thief, secret) {
		t.Error("theft not detected")
	}
}

func TestPathExprPublic(t *testing.T) {
	u := NewUniverse()
	if _, err := ParsePathExpr(u, "t>* g>"); err != nil {
		t.Error(err)
	}
	if _, err := ParsePathExpr(u, "t>*("); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestReclassifyGuard(t *testing.T) {
	c, err := BuildLinear(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(c.G)
	if err := sys.Reclassify(); err != nil {
		t.Errorf("clean reclassify refused: %v", err)
	}
	// Dirty the graph behind the guard's back and retry.
	low := c.Members["L1"][0]
	c.G.AddExplicit(low, c.Bulletin["L2"], Of(Read))
	if err := sys.Reclassify(); err == nil {
		t.Error("reclassify allowed with live violations")
	}
}
