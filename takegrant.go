// Package takegrant is a production-quality implementation of the
// hierarchical Take-Grant Protection Model of Bishop, "Hierarchical
// Take-Grant Protection Systems" (SOSP 1981).
//
// The model represents a protection state as a finite directed graph:
// active subjects and passive objects, with edges labelled by rights
// (read, write, take, grant, plus user-declared rights). De jure rules
// (take, grant, create, remove) transfer authority; de facto rules (post,
// pass, spy, find) exhibit information flow. The package answers the
// model's decision problems — can•share (Theorem 2.3), can•know•f
// (Theorem 3.1) and can•know (Theorem 3.2) — constructively: every
// positive answer comes with a replayable rule derivation.
//
// Its centrepiece is the hierarchical system of §§4–5: security levels as
// mutual-information classes, a `higher` partial order, and the combined
// no-read-up / no-write-down restriction that keeps a hierarchy secure
// against arbitrarily many corrupt subjects while still letting every
// other right move freely (Theorem 5.5: sound and complete).
//
// Quick start:
//
//	c, _ := takegrant.BuildLinear(3, 2)       // 3-level classification
//	sys := takegrant.NewSystem(c.G)           // guarded system
//	low := c.Members["L1"][0]
//	top := c.Bulletin["L3"]
//	sys.CanKnow(low, top)                     // false — provably
//
// See the examples directory for complete programs and DESIGN.md for the
// paper-to-package map.
package takegrant

import (
	"io"
	"net/http"

	"takegrant/internal/analysis"
	"takegrant/internal/conspiracy"
	"takegrant/internal/core"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/relang"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/service"
	"takegrant/internal/specimens"
	"takegrant/internal/steal"
	"takegrant/internal/tgio"
)

// Core graph vocabulary.
type (
	// Graph is a protection graph: subjects, objects, labelled edges.
	Graph = graph.Graph
	// ID identifies a vertex within one Graph.
	ID = graph.ID
	// Right is a single access right; Set is a set of them.
	Right = rights.Right
	// Set is a rights bitset.
	Set = rights.Set
	// Universe names the rights labelling a graph's edges.
	Universe = rights.Universe
	// Application is one rewriting-rule instance.
	Application = rules.Application
	// Derivation is a replayable sequence of rule applications.
	Derivation = rules.Derivation
	// System is a guarded hierarchical protection system.
	System = core.System
	// Classification is a built level hierarchy.
	Classification = hierarchy.Classification
	// Structure is a computed level decomposition.
	Structure = hierarchy.Structure
	// Level describes one classification level for Build.
	Level = hierarchy.Level
)

// The distinguished rights.
const (
	Read  = rights.Read
	Write = rights.Write
	Take  = rights.Take
	Grant = rights.Grant
)

// None is the invalid vertex ID.
const None = graph.None

// Vertex kinds.
const (
	Subject = graph.Subject
	Object  = graph.Object
)

// NewGraph returns an empty protection graph (nil universe for the default
// r, w, t, g rights).
func NewGraph(u *Universe) *Graph { return graph.New(u) }

// NewUniverse returns a universe with the four distinguished rights.
func NewUniverse() *Universe { return rights.NewUniverse() }

// Of builds a rights set.
func Of(rs ...Right) Set { return rights.Of(rs...) }

// NewSystem wraps a graph in a guarded hierarchical system.
func NewSystem(g *Graph) *System { return core.New(g) }

// Build constructs a classification hierarchy from level descriptions.
func Build(levels []Level) (*Classification, error) { return hierarchy.Build(levels) }

// BuildLinear constructs the paper's Figure 4.1 linear classification.
func BuildLinear(n, subjectsPerLevel int) (*Classification, error) {
	return hierarchy.Linear(n, subjectsPerLevel)
}

// BuildMilitary constructs the paper's Figure 4.2 military lattice.
func BuildMilitary(numAuthorities int, categories []string, subjectsPerLevel int) (*Classification, error) {
	return hierarchy.Military(numAuthorities, categories, subjectsPerLevel)
}

// Rule constructors (see the paper's §2 and §3 for the role names).
var (
	// TakeRule builds "x takes (δ to z) from y".
	TakeRule = rules.Take
	// GrantRule builds "x grants (δ to z) to y".
	GrantRule = rules.Grant
	// CreateRule builds "x creates (δ to) new vertex".
	CreateRule = rules.Create
	// RemoveRule builds "x removes (α to) y".
	RemoveRule = rules.Remove
	// PostRule, PassRule, SpyRule, FindRule build the de facto rules.
	PostRule = rules.Post
	PassRule = rules.Pass
	SpyRule  = rules.Spy
	FindRule = rules.Find
)

// CanShare decides can•share(α, x, y, G) — Theorem 2.3.
func CanShare(g *Graph, alpha Right, x, y ID) bool { return analysis.CanShare(g, alpha, x, y) }

// CanKnowF decides can•know•f(x, y, G) — Theorem 3.1 (de facto only).
func CanKnowF(g *Graph, x, y ID) bool { return analysis.CanKnowF(g, x, y) }

// CanKnow decides can•know(x, y, G) — Theorem 3.2 (de jure + de facto).
func CanKnow(g *Graph, x, y ID) bool { return analysis.CanKnow(g, x, y) }

// CanSteal decides Snyder's theft predicate: acquisition without owner
// cooperation.
func CanSteal(g *Graph, alpha Right, x, y ID) bool { return steal.CanSteal(g, alpha, x, y) }

// CanSnoop decides information theft: can x come to know y's information
// with no owner of read authority over y cooperating?
func CanSnoop(g *Graph, x, y ID) bool { return steal.CanSnoop(g, x, y) }

// ExplainSteal returns a replayable derivation realising a theft.
func ExplainSteal(g *Graph, alpha Right, x, y ID) (Derivation, error) {
	return steal.Synthesize(g, alpha, x, y)
}

// ExplainSnoop returns a replayable derivation realising a snoop.
func ExplainSnoop(g *Graph, x, y ID) (Derivation, error) {
	return steal.SynthesizeSnoop(g, x, y)
}

// ExplainShare returns a replayable de jure derivation witnessing CanShare.
func ExplainShare(g *Graph, alpha Right, x, y ID) (Derivation, error) {
	return analysis.SynthesizeShare(g, alpha, x, y)
}

// ExplainKnow returns a replayable derivation witnessing CanKnow.
func ExplainKnow(g *Graph, x, y ID) (Derivation, error) {
	return analysis.SynthesizeKnow(g, x, y)
}

// MinConspirators returns the minimum number of subjects that must
// cooperate for x to learn y's information de facto, with the conspirator
// chain.
func MinConspirators(g *Graph, x, y ID) (int, []ID, bool) {
	return conspiracy.MinConspiratorsF(g, x, y)
}

// Islands returns the graph's islands (maximal subject-only tg-connected
// groups).
func Islands(g *Graph) [][]ID { return analysis.Islands(g) }

// Acquisition is one entry of a rights-amplification profile.
type Acquisition = analysis.Acquisition

// RightsProfile lists every right a vertex can ever acquire under
// unrestricted de jure rules — the can•share closure of one vertex.
func RightsProfile(g *Graph, x ID) []Acquisition { return analysis.Profile(g, x) }

// AnalyzeRW computes the rw-level structure (§4).
func AnalyzeRW(g *Graph) *Structure { return hierarchy.AnalyzeRW(g) }

// AnalyzeRWTG computes the rwtg-level structure (§5).
func AnalyzeRWTG(g *Graph) *Structure { return hierarchy.AnalyzeRWTG(g) }

// Secure evaluates the §5 security predicate.
func Secure(g *Graph) (bool, *hierarchy.Violation) { return hierarchy.Secure(g) }

// StrictSecure also rejects flows between incomparable levels.
func StrictSecure(g *Graph) (bool, *hierarchy.Violation) { return hierarchy.StrictSecure(g) }

// Restriction vocabulary (§5).
type (
	// Restriction guards de jure rule applications.
	Restriction = restrict.Restriction
	// Guarded executes rules under a restriction.
	Guarded = restrict.Guarded
	// Combined is the paper's sound-and-complete restriction.
	Combined = restrict.Combined
)

// NewCombined builds the combined no-read-up/no-write-down restriction
// over a classification.
func NewCombined(s *Structure) *Combined { return restrict.NewCombined(s) }

// ShareableUnder decides can•share under the combined restriction — the
// composition Theorem 5.5's completeness licenses: unrestricted can•share,
// minus read-up and write-down edges.
func ShareableUnder(g *Graph, c *Combined, alpha Right, x, y ID) bool {
	return restrict.ShareableUnder(g, c, alpha, x, y)
}

// NewGuarded wraps a graph with a restriction.
func NewGuarded(g *Graph, r Restriction) *Guarded { return restrict.NewGuarded(g, r) }

// Unrestricted permits every rule application.
var Unrestricted Restriction = restrict.Unrestricted{}

// ParseGraph reads a .tg document.
func ParseGraph(r io.Reader) (*Graph, error) { return tgio.Parse(r) }

// ParseGraphString reads a .tg document from a string.
func ParseGraphString(s string) (*Graph, error) { return tgio.ParseString(s) }

// WriteGraph renders a graph in canonical .tg form.
func WriteGraph(g *Graph) string { return tgio.WriteString(g) }

// DOT renders a graph in Graphviz syntax.
func DOT(g *Graph, title string) string { return tgio.DOT(g, title) }

// Render produces a terminal-friendly listing of the graph.
func Render(g *Graph) string { return tgio.Render(g) }

// Witness searching (exposed for custom path queries).
type (
	// PathExpr is a regular expression over edge words.
	PathExpr = relang.Expr
	// PathStep is one edge traversal of a witness path.
	PathStep = relang.Step
)

// ParsePathExpr parses the text syntax for edge-word languages, e.g.
// "t>* g>" or "(r>[tail] | w<[head])*".
func ParsePathExpr(u *Universe, text string) (*PathExpr, error) { return relang.Parse(u, text) }

// Trace replays a derivation on a clone of g, rendering each step with the
// graph change it caused — a human-readable proof transcript.
func Trace(g *Graph, d Derivation) (string, error) { return rules.Trace(g, d) }

// Specimens lists the built-in paper-figure graphs (fig22, fig51, fig61,
// military, wu).
func Specimens() []string { return specimens.List() }

// LoadSpecimen parses a built-in paper figure into a fresh graph.
func LoadSpecimen(name string) (*Graph, error) { return specimens.Load(name) }

// NewHTTPHandler returns the reference-monitor HTTP API over a fresh
// guarded system: PUT /graph to load, POST /apply for guarded rules,
// GET /query/* for the decision procedures. See cmd/tgserve.
func NewHTTPHandler() http.Handler { return service.New().Handler() }
