package takegrant

// Benchmarks: one per reproduced table/figure plus the DESIGN.md §5
// ablations. The scaling benchmarks (E8/E9/E10) sweep graph sizes so the
// reported ns/op curves exhibit the paper's complexity claims: linear in
// edges for the audit (Cor 5.6), flat for the per-rule guard (Cor 5.7),
// near-linear for the can•share decision (Thm 2.3).

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"takegrant/internal/analysis"
	"takegrant/internal/experiments"
	"takegrant/internal/explore"
	"takegrant/internal/graph"
	"takegrant/internal/hierarchy"
	"takegrant/internal/relang"
	"takegrant/internal/restrict"
	"takegrant/internal/rights"
	"takegrant/internal/rules"
	"takegrant/internal/service"
	"takegrant/internal/simulate"
	"takegrant/internal/specimens"
	"takegrant/internal/wu"
)

// BenchmarkE1WuConspiracy times the end-to-end breach of Wu's model:
// decision plus derivation synthesis plus replay verification.
func BenchmarkE1WuConspiracy(b *testing.B) {
	w, err := wu.New(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		breached, d, err := w.Breachable()
		if !breached || err != nil || d == nil {
			b.Fatal("breach lost")
		}
	}
}

// BenchmarkE4LinearLevels times the rw-level (SCC) analysis of Figure 4.1
// hierarchies as they grow.
func BenchmarkE4LinearLevels(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		c, err := hierarchy.Linear(n, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("levels-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := hierarchy.AnalyzeRW(c.G)
				if s.NumLevels() != n {
					b.Fatal("level count wrong")
				}
			}
		})
	}
}

// BenchmarkE6Restriction times one guarded rule application on the
// Figure 5.1 graph (accept and refuse paths).
func BenchmarkE6Restriction(b *testing.B) {
	c, _ := hierarchy.Linear(2, 1)
	g := c.G
	e := g.Universe().MustDeclare("e")
	x := c.Members["L2"][0]
	y := c.Bulletin["L1"]
	v := g.MustObject("v")
	g.AddExplicit(x, v, rights.T)
	g.AddExplicit(v, y, rights.Of(e, rights.Write))
	s := hierarchy.AnalyzeRW(g)
	comb := restrict.NewCombined(s)
	refuse := rules.Take(x, v, y, rights.W)
	allow := rules.Take(x, v, y, rights.Of(e))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comb.Allows(g, refuse) == nil {
			b.Fatal("write-down allowed")
		}
		if comb.Allows(g, allow) != nil {
			b.Fatal("execute refused")
		}
	}
}

// BenchmarkE8LinearCheck sweeps the Corollary 5.6 audit across graph
// sizes; ns/op should grow linearly with the edge counts logged.
func BenchmarkE8LinearCheck(b *testing.B) {
	for _, scale := range []int{4, 8, 16, 32} {
		w := experiments.ScalingWorld(4, scale, scale, 11)
		comb := restrict.NewCombined(w.S)
		g := w.G()
		b.Run(fmt.Sprintf("edges-%d", g.NumEdges()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comb.Audit(g)
			}
		})
	}
}

// BenchmarkE9ConstCheck sweeps the Corollary 5.7 per-rule guard; ns/op
// should stay flat as the graph grows.
func BenchmarkE9ConstCheck(b *testing.B) {
	for _, scale := range []int{4, 8, 16, 32} {
		w := experiments.ScalingWorld(4, scale, scale, 13)
		g := w.G()
		comb := restrict.NewCombined(w.S)
		subs := g.Subjects()
		app := rules.Take(subs[0], subs[1], subs[len(subs)-1], rights.W)
		b.Run(fmt.Sprintf("edges-%d", g.NumEdges()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = comb.Allows(g, app)
			}
		})
	}
}

// BenchmarkE10CanShare sweeps the Theorem 2.3 decision.
func BenchmarkE10CanShare(b *testing.B) {
	for _, scale := range []int{4, 8, 16, 32} {
		w := experiments.ScalingWorld(4, scale, scale, 17)
		g := w.G()
		low := w.C.Members["L1"][0]
		top := w.Docs["L4"][0]
		b.Run(fmt.Sprintf("edges-%d", g.NumEdges()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analysis.CanShare(g, rights.Read, low, top)
			}
		})
	}
}

// BenchmarkE11Soundness times one full guarded adversarial run.
func BenchmarkE11Soundness(b *testing.B) {
	spec := simulate.Spec{Levels: 3, SubjectsPerLevel: 2, DocsPerLevel: 1, ExtraRights: 4, CrossTG: 4, Seed: 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := simulate.Hierarchy(spec)
		if err != nil {
			b.Fatal(err)
		}
		out := simulate.Adversary(w, restrict.NewCombined(w.S), 60, rand.New(rand.NewSource(int64(i))))
		if out.Breached {
			b.Fatal("guarded run breached")
		}
	}
}

// BenchmarkE14BLP times the §6 equivalence sweep on the two-category
// lattice.
func BenchmarkE14BLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, ok := experiments.Run("E14")
		if !ok || !t.Pass {
			b.Fatal("E14 failed")
		}
	}
}

// BenchmarkCanKnow times the Theorem 3.2 decision on a mid-sized world.
func BenchmarkCanKnow(b *testing.B) {
	w := experiments.ScalingWorld(4, 8, 8, 23)
	g := w.G()
	low := w.C.Members["L1"][0]
	top := w.Docs["L4"][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.CanKnow(g, low, top)
	}
}

// BenchmarkSynthesizeShare times constructive witness synthesis including
// replay verification.
func BenchmarkSynthesizeShare(b *testing.B) {
	g := graph.New(nil)
	p := g.MustSubject("p")
	u := g.MustSubject("u")
	v := g.MustObject("v")
	w := g.MustSubject("w")
	x := g.MustObject("x")
	y := g.MustSubject("y")
	sp := g.MustSubject("sp")
	s := g.MustObject("s")
	q := g.MustObject("q")
	g.AddExplicit(p, u, rights.G)
	g.AddExplicit(u, v, rights.T)
	g.AddExplicit(v, w, rights.G)
	g.AddExplicit(x, w, rights.T)
	g.AddExplicit(y, x, rights.T)
	g.AddExplicit(y, sp, rights.T)
	g.AddExplicit(sp, s, rights.T)
	g.AddExplicit(s, q, rights.R)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.SynthesizeShare(g, rights.Read, p, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeFactoClosure times eager information-flow materialisation.
func BenchmarkDeFactoClosure(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 4, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := w.G().Clone()
		rules.DeFactoClosure(clone)
	}
}

// Ablation benchmarks (DESIGN.md §5).

func BenchmarkAblationLevelsSCC(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 8, 19)
	g := w.G()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hierarchy.AnalyzeRW(g)
	}
}

func BenchmarkAblationLevelsPairwise(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 8, 19)
	g := w.G()
	vs := g.Vertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range vs {
			for _, y := range vs {
				analysis.CanKnowF(g, x, y)
			}
		}
	}
}

func BenchmarkAblationRelangNFA(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 8, 23)
	g := w.G()
	nfa := relang.Compile(relang.Bridge())
	src := g.Subjects()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relang.Search(g, nfa, []graph.ID{src}, relang.Options{})
	}
}

func BenchmarkAblationRelangDFA(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 8, 23)
	g := w.G()
	dfa := relang.Determinize(relang.Compile(relang.Bridge()))
	src := g.Subjects()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relang.SearchDFA(g, dfa, []graph.ID{src}, relang.Options{})
	}
}

func BenchmarkAblationIncrementalGuard(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 8, 29)
	g := w.G()
	comb := restrict.NewCombined(w.S)
	subs := g.Subjects()
	app := rules.Take(subs[0], subs[1], subs[len(subs)-1], rights.W)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = comb.Allows(g, app)
	}
}

func BenchmarkAblationIncrementalReAudit(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 8, 29)
	g := w.G()
	comb := restrict.NewCombined(w.S)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comb.Audit(g)
	}
}

func BenchmarkAblationExploreSerial(b *testing.B) {
	g := mustSpecimen(b, "fig61")
	opts := explore.Options{MaxDepth: 3, MaxStates: 100000, DeJure: true, DeFacto: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		explore.Visit(g, opts, func(*graph.Graph, int) bool { return true })
	}
}

func BenchmarkAblationExploreParallel(b *testing.B) {
	g := mustSpecimen(b, "fig61")
	opts := explore.Options{MaxDepth: 3, MaxStates: 100000, DeJure: true, DeFacto: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		explore.VisitParallel(g, opts, 0, func(*graph.Graph, int) bool { return true })
	}
}

// BenchmarkProfile times the bulk rights-amplification closure against
// per-pair queries (it must win decisively on dense graphs).
func BenchmarkProfile(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 4, 37)
	g := w.G()
	x := g.Subjects()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Profile(g, x)
	}
}

// BenchmarkServiceReadParallel drives the HTTP reference monitor's
// read path with b.RunParallel. Queries hold only a read lock and repeat
// queries at an unchanged revision are cache hits, so throughput should
// rise with GOMAXPROCS (compare -cpu 1,2,4,8); the old single-mutex
// server serialized every query.
func BenchmarkServiceReadParallel(b *testing.B) {
	srv := service.New()
	h := srv.Handler()
	src, err := specimens.Source("military")
	if err != nil {
		b.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/graph", strings.NewReader(src)))
	if rec.Code != http.StatusOK {
		b.Fatalf("load = %d", rec.Code)
	}
	paths := []string{
		"/query/can-know?x=a1&y=bbb1",
		"/query/can-share?right=r&x=a1&y=abb2",
		"/secure",
		"/levels",
	}
	// Prime each query once so the timed region measures the steady
	// state: cache hits under the read lock.
	for _, p := range paths {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("prime %s = %d", p, rec.Code)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, paths[i%len(paths)], nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
			i++
		}
	})
	if st := srv.Stats(); st.Cache.Hits == 0 {
		b.Fatal("no cache hits during parallel read benchmark")
	}
}

// BenchmarkServiceMixedParallel adds a mutation per ~64 queries, forcing
// periodic hierarchy re-derivation and cache turnover under the write
// lock — the worst case the revision-keyed design must absorb.
func BenchmarkServiceMixedParallel(b *testing.B) {
	srv := service.New()
	h := srv.Handler()
	src, err := specimens.Source("military")
	if err != nil {
		b.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/graph", strings.NewReader(src)))
	if rec.Code != http.StatusOK {
		b.Fatalf("load = %d", rec.Code)
	}
	var seq int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%64 == 63 {
				body := fmt.Sprintf(`{"op":"create","x":"a1","name":"bs%d","kind":"object","rights":"r,w"}`,
					atomic.AddInt64(&seq, 1))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/apply", strings.NewReader(body)))
				if rec.Code != http.StatusOK {
					b.Fatalf("apply = %d", rec.Code)
				}
			} else {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query/can-know?x=a1&y=bbb1", nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d", rec.Code)
				}
			}
			i++
		}
	})
}

func mustSpecimen(b *testing.B, name string) *graph.Graph {
	b.Helper()
	g, err := specimens.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkAblationClosureLazy(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 2, 31)
	g := w.G()
	low := w.C.Members["L1"][0]
	top := w.C.Bulletin["L3"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.CanKnowF(g, top, low)
	}
}

func BenchmarkAblationClosureEager(b *testing.B) {
	w := experiments.ScalingWorld(3, 8, 2, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := w.G().Clone()
		rules.DeFactoClosure(clone)
	}
}
