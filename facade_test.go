package takegrant

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFacadeBuilders(t *testing.T) {
	if _, err := Build([]Level{{Name: "A", Subjects: 1}}); err != nil {
		t.Error(err)
	}
	if _, err := BuildMilitary(2, []string{"A"}, 1); err != nil {
		t.Error(err)
	}
	u := NewUniverse()
	if u.Len() != 4 {
		t.Error("universe wrong")
	}
	if Of(Read, Write).Count() != 2 {
		t.Error("Of wrong")
	}
}

func TestFacadeRules(t *testing.T) {
	g := NewGraph(nil)
	x := g.MustSubject("x")
	y := g.MustSubject("y")
	o := g.MustObject("o")
	g.AddExplicit(x, y, Of(Grant))
	g.AddExplicit(x, o, Of(Read, Write))
	for _, app := range []Application{
		GrantRule(x, y, o, Of(Read)),
		CreateRule(x, "n", Object, Of(Take)),
		RemoveRule(x, o, Of(Write)),
	} {
		if err := app.Apply(g); err != nil {
			t.Errorf("%v: %v", app.Op, err)
		}
	}
	// De facto rules.
	g.AddExplicit(x, y, Of(Read))
	g.AddExplicit(y, o, Of(Read))
	if err := SpyRule(x, y, o).Apply(g); err != nil {
		t.Errorf("spy: %v", err)
	}
	z := g.MustSubject("z")
	g.AddExplicit(z, o, Of(Write))
	if err := PostRule(x, o, z).Apply(g); err != nil {
		t.Errorf("post: %v", err)
	}
	g.AddExplicit(y, x, Of(Write))
	if err := PassRule(x, y, o).Apply(g); err == nil {
		// pass adds implicit x→o r; may already exist — both fine
		_ = err
	}
	w := g.MustSubject("w")
	g.AddExplicit(w, y, Of(Write))
	g.AddExplicit(y, o, Of(Write))
	if err := FindRule(o, y, w).Apply(g); err != nil {
		t.Errorf("find: %v", err)
	}
}

func TestFacadeAnalyses(t *testing.T) {
	c, err := BuildLinear(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := c.G
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	if !CanKnowF(g, high, low) || CanKnowF(g, low, high) {
		t.Error("CanKnowF wrong")
	}
	if CanKnow(g, low, c.Bulletin["L2"]) {
		t.Error("CanKnow leak")
	}
	if len(Islands(g)) == 0 {
		t.Error("no islands")
	}
	if AnalyzeRWTG(g).NumLevels() == 0 {
		t.Error("no rwtg levels")
	}
	if ok, _ := StrictSecure(g); !ok {
		t.Error("not strictly secure")
	}
	if _, err := ExplainKnow(g, high, low); err != nil {
		t.Errorf("ExplainKnow: %v", err)
	}
}

func TestFacadeRestrictions(t *testing.T) {
	c, _ := BuildLinear(2, 1)
	g := c.G
	s := AnalyzeRW(g)
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	g.AddExplicit(low, high, Of(Take))
	guard := NewGuarded(g, NewCombined(s))
	if err := guard.Apply(TakeRule(low, high, c.Bulletin["L2"], Of(Read))); err == nil {
		t.Error("read-up allowed")
	}
	un := NewGuarded(g.Clone(), Unrestricted)
	if err := un.Apply(TakeRule(low, high, c.Bulletin["L2"], Of(Read))); err != nil {
		t.Errorf("unrestricted refused: %v", err)
	}
}

func TestFacadeStealSnoop(t *testing.T) {
	g := NewGraph(nil)
	thief := g.MustSubject("thief")
	owner := g.MustSubject("owner")
	secret := g.MustObject("secret")
	g.AddExplicit(thief, owner, Of(Take))
	g.AddExplicit(owner, secret, Of(Read))
	if !CanSnoop(g, thief, secret) {
		t.Error("snoop not detected")
	}
	if d, err := ExplainSteal(g, Read, thief, secret); err != nil || len(d) == 0 {
		t.Errorf("ExplainSteal = %v, %v", d, err)
	}
	if d, err := ExplainSnoop(g, thief, secret); err != nil || len(d) == 0 {
		t.Errorf("ExplainSnoop = %v, %v", d, err)
	}
}

func TestFacadeProfileAndPaths(t *testing.T) {
	g := NewGraph(nil)
	x := g.MustSubject("x")
	v := g.MustObject("v")
	g.AddExplicit(x, v, Of(Take))
	if p := RightsProfile(g, x); len(p) != 1 || !p[0].Held {
		t.Errorf("profile = %v", p)
	}
	u := g.Universe()
	expr, err := ParsePathExpr(u, "t>*")
	if err != nil || expr == nil {
		t.Fatal(err)
	}
}

func TestFacadeDOTRender(t *testing.T) {
	g, err := ParseGraphString("subject a\nobject b\nedge a b t\nimplicit b a r\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(DOT(g, "x"), "dashed") {
		t.Error("DOT missing implicit style")
	}
	if WriteGraph(g) == "" {
		t.Error("WriteGraph empty")
	}
	if _, err := ParseGraphString("bogus line"); err == nil {
		t.Error("bad parse accepted")
	}
}

func TestFacadeHTTPHandler(t *testing.T) {
	h := NewHTTPHandler()
	req := httptest.NewRequest("PUT", "/graph", strings.NewReader("subject a\nobject b\nedge a b r\n"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("PUT /graph = %d: %s", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest("GET", "/query/can-know?x=a&y=b", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "true") {
		t.Errorf("can-know = %s", rec.Body.String())
	}
}

func TestFacadeSpecimens(t *testing.T) {
	if len(Specimens()) != 5 {
		t.Errorf("specimens = %v", Specimens())
	}
	g, err := LoadSpecimen("fig22")
	if err != nil || g.NumVertices() == 0 {
		t.Errorf("LoadSpecimen = %v", err)
	}
	d, err := ExplainShare(g, Read, mustID(t, g, "p"), mustID(t, g, "q"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Trace(g, d)
	if err != nil || out == "" {
		t.Errorf("Trace = %q, %v", out, err)
	}
}

func mustID(t *testing.T, g *Graph, name string) ID {
	t.Helper()
	v, ok := g.Lookup(name)
	if !ok {
		t.Fatalf("missing %s", name)
	}
	return v
}

func TestFacadeShareableUnder(t *testing.T) {
	c, _ := BuildLinear(2, 1)
	g := c.G
	low := c.Members["L1"][0]
	high := c.Members["L2"][0]
	g.AddExplicit(low, high, Of(Take))
	comb := NewCombined(AnalyzeRW(g))
	if ShareableUnder(g, comb, Read, low, c.Bulletin["L2"]) {
		t.Error("read-up shareable under the restriction")
	}
	if !ShareableUnder(g, comb, Write, low, c.Bulletin["L2"]) {
		t.Error("write-up blocked under the restriction")
	}
}

func TestFacadeMinConspiratorsChain(t *testing.T) {
	g := NewGraph(nil)
	x := g.MustSubject("x")
	m := g.MustObject("m")
	s := g.MustSubject("s")
	y := g.MustObject("y")
	g.AddExplicit(x, m, Of(Read))
	g.AddExplicit(s, m, Of(Write))
	g.AddExplicit(s, y, Of(Read))
	n, chain, ok := MinConspirators(g, x, y)
	if !ok || n != 2 || len(chain) != 2 {
		t.Errorf("= %d %v %v", n, chain, ok)
	}
}
