module takegrant

go 1.22
