// Military: the paper's Figure 4.2 — a military classification lattice
// (authority levels × compartment categories) modelled as a hierarchical
// Take-Grant protection graph. The demo shows the `higher` relation is a
// partial order with incomparable levels, that information flows only up,
// and that no conspiracy of corrupt subjects — however large — moves
// intelligence across compartments or downward (Theorem 4.3).
package main

import (
	"fmt"
	"log"

	"takegrant"
)

func main() {
	// Authorities 1..3 (confidential, secret, top secret) over categories
	// NUCLEAR and NAVAL, plus the shared unclassified level U.
	c, err := takegrant.BuildMilitary(3, []string{"NUCLEAR", "NAVAL"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	g := c.G
	s := takegrant.AnalyzeRW(g)

	general := c.Members["NUCLEAR3"][0]
	analyst := c.Members["NUCLEAR1"][0]
	admiral := c.Members["NAVAL3"][0]
	clerk := c.Members["U"][0]

	fmt.Println("Level order (Proposition 4.4 — a strict partial order):")
	pairs := []struct {
		a, b   takegrant.ID
		la, lb string
	}{
		{general, analyst, "NUCLEAR3", "NUCLEAR1"},
		{general, clerk, "NUCLEAR3", "U"},
		{general, admiral, "NUCLEAR3", "NAVAL3"},
		{admiral, analyst, "NAVAL3", "NUCLEAR1"},
	}
	for _, p := range pairs {
		switch {
		case s.Higher(p.a, p.b):
			fmt.Printf("  %s > %s\n", p.la, p.lb)
		case s.Higher(p.b, p.a):
			fmt.Printf("  %s < %s\n", p.la, p.lb)
		default:
			fmt.Printf("  %s ∥ %s (incomparable)\n", p.la, p.lb)
		}
	}

	fmt.Println("\nInformation flow (can•know, all subjects corrupt):")
	flows := []struct {
		from, to takegrant.ID
		desc     string
	}{
		{general, c.Bulletin["NUCLEAR1"], "general reads NUCLEAR1 traffic"},
		{analyst, c.Bulletin["NUCLEAR3"], "analyst reads NUCLEAR3 traffic"},
		{admiral, c.Bulletin["NUCLEAR1"], "admiral reads NUCLEAR traffic"},
		{clerk, c.Bulletin["NAVAL1"], "clerk reads NAVAL traffic"},
		{general, c.Bulletin["U"], "general reads unclassified"},
	}
	for _, f := range flows {
		fmt.Printf("  %-34s %v\n", f.desc+":", takegrant.CanKnow(g, f.from, f.to))
	}

	// Two same-rank subjects in different compartments cannot even talk:
	// "the model makes no assumptions about their being able to
	// communicate with each other."
	a1, b1 := c.Members["NUCLEAR1"][0], c.Members["NAVAL1"][0]
	fmt.Printf("\nNUCLEAR1 ↔ NAVAL1 communication: %v / %v\n",
		takegrant.CanKnowF(g, a1, b1), takegrant.CanKnowF(g, b1, a1))

	if ok, _ := takegrant.Secure(g); !ok {
		log.Fatal("lattice should be secure")
	}
	fmt.Println("\nsecure: true — no breach exists regardless of conspiracies")
}
