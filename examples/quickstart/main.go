// Quickstart: build the paper's Figure 5.1, watch the unrestricted rules
// breach the hierarchy, then watch the combined restriction stop the
// breach while still letting the harmless execute right cross levels.
package main

import (
	"fmt"
	"log"

	"takegrant"
)

func main() {
	// A two-level hierarchy: L2 (secret) above L1 (public).
	c, err := takegrant.BuildLinear(2, 1)
	if err != nil {
		log.Fatal(err)
	}
	g := c.G
	x := c.Members["L2"][0] // the secret-level subject
	y := c.Bulletin["L1"]   // the public bulletin board

	// Figure 5.1's extra structure: x holds take over a vertex v that has
	// execute and write rights to the public board.
	e := g.Universe().MustDeclare("e")
	v := g.MustObject("v")
	g.AddExplicit(x, v, takegrant.Of(takegrant.Take))
	g.AddExplicit(v, y, takegrant.Of(e, takegrant.Write))

	fmt.Println("The protection graph:")
	fmt.Println(takegrant.Render(g))

	// Unrestricted, the graph is insecure: x can take the write right and
	// copy secrets down to the public board.
	if ok, viol := takegrant.Secure(g); !ok {
		fmt.Printf("Unrestricted rules: INSECURE (%s can come to know %s)\n\n",
			g.Name(viol.Lower), g.Name(viol.Upper))
	}

	// Wrap the graph in a guarded system: every de jure rule now passes
	// through the paper's combined restriction (no read up, no write down).
	sys := takegrant.NewSystem(g)

	// The write-down acquisition is refused…
	err = sys.Apply(takegrant.TakeRule(x, v, y, takegrant.Of(takegrant.Write)))
	fmt.Printf("x takes (w to %s): %v\n", g.Name(y), err)

	// …but the execute right crosses levels freely (Theorem 5.5: the
	// restriction is complete — only r and w are constrained).
	err = sys.Apply(takegrant.TakeRule(x, v, y, takegrant.Of(e)))
	fmt.Printf("x takes (e to %s): %v\n", g.Name(y), err)
	if !g.Explicit(x, y).Has(e) {
		log.Fatal("execute right did not arrive")
	}

	applied, refused := sys.Stats()
	fmt.Printf("\nguard: %d applied, %d refused; audit violations: %d\n",
		applied, refused, len(sys.Audit()))
}
