// Documentsystem: a small classified document store built on the public
// API — the Bell–LaPadula "total view of security" the paper's §6 derives.
//
// The program classifies users and documents in a three-level hierarchy,
// routes every operation through the guarded System (restriction (a) =
// refined simple security, restriction (b) = no write down), demonstrates
// object classification per Theorem 4.5, and finishes with the §6
// declassification discussion: why the model refuses to reclassify.
package main

import (
	"fmt"
	"log"

	"takegrant"
)

func main() {
	c, err := takegrant.BuildLinear(3, 2)
	if err != nil {
		log.Fatal(err)
	}
	g := c.G
	sys := takegrant.NewSystem(g)

	intern := c.Members["L1"][0]
	officer := c.Members["L2"][0]
	director := c.Members["L3"][0]

	// Each user files a document at their own level: create classifies the
	// new object with its creator (scratch inherits clearance).
	mustApply(sys, takegrant.CreateRule(intern, "lunch_menu", takegrant.Object,
		takegrant.Of(takegrant.Read, takegrant.Write, takegrant.Grant)))
	mustApply(sys, takegrant.CreateRule(officer, "budget", takegrant.Object,
		takegrant.Of(takegrant.Read, takegrant.Write, takegrant.Grant)))
	mustApply(sys, takegrant.CreateRule(director, "merger_plan", takegrant.Object,
		takegrant.Of(takegrant.Read, takegrant.Write, takegrant.Grant)))
	menu, _ := g.Lookup("lunch_menu")
	budget, _ := g.Lookup("budget")
	merger, _ := g.Lookup("merger_plan")

	// On this clean graph the hierarchy is self-enforcing: no wiring lets
	// the intern reach the merger plan even in principle.
	fmt.Printf("clean graph: can.know(intern, merger_plan) = %v\n",
		sys.CanKnow(intern, merger))

	fmt.Println("Document classification (Theorem 4.5: lowest accessor level):")
	for _, doc := range []takegrant.ID{menu, budget, merger} {
		lvl, _ := sys.ObjectLevel(doc)
		fmt.Printf("  %-12s level %d\n", g.Name(doc), lvl)
	}

	// Sharing within policy: the director grants the officer read access
	// to… the intern's menu. Reading down is fine.
	fmt.Println("\nOperations through the reference monitor:")
	ops := []struct {
		desc string
		app  takegrant.Application
	}{
		{"intern grants (r to lunch_menu) upward to officer? needs a grant edge…",
			takegrant.GrantRule(intern, officer, menu, takegrant.Of(takegrant.Read))},
		{"director writes down into the budget",
			takegrant.TakeRule(director, officer, budget, takegrant.Of(takegrant.Write))},
		{"officer reads up into the merger plan",
			takegrant.TakeRule(officer, director, merger, takegrant.Of(takegrant.Read))},
	}
	// Wire the de jure plumbing the operations exercise.
	g.AddExplicit(intern, officer, takegrant.Of(takegrant.Grant))  // intern can grant up
	g.AddExplicit(director, officer, takegrant.Of(takegrant.Take)) // hierarchy edges
	g.AddExplicit(officer, director, takegrant.Of(takegrant.Take)) // (dangerous on purpose)
	for _, op := range ops {
		err := sys.Apply(op.app)
		verdict := "allowed"
		if err != nil {
			verdict = "REFUSED (" + firstLine(err.Error()) + ")"
		}
		fmt.Printf("  %-64s %s\n", op.desc, verdict)
	}

	applied, refused := sys.Stats()
	fmt.Printf("\nmonitor: %d applied, %d refused, audit violations: %d\n",
		applied, refused, len(sys.Audit()))

	// §6: declassification. Lowering merger_plan so the officer can read
	// it would be a reclassification — the model refuses while any higher
	// user retains write access, because they could immediately write
	// classified content into the now-public file. Our System surfaces the
	// cousin rule: reclassification is refused whenever the graph audits
	// dirty, and even on a clean graph the *information* already read
	// cannot be called back.
	fmt.Println("\nDeclassification (§6):")
	if err := sys.Reclassify(); err != nil {
		fmt.Println("  reclassify:", err)
	} else {
		fmt.Println("  reclassify: allowed — levels recomputed from the clean graph")
	}
	fmt.Println("  the paper: \"the security classification of information cannot be")
	fmt.Println("  changed without compromising security\" — anyone who read a file")
	fmt.Println("  before it was raised may have kept a private copy.")

	// The de jure wiring above made the graph *statically* dangerous:
	// subject-to-subject take/grant edges are bridges, so under
	// unrestricted rules the intern could eventually reach the merger
	// plan (Theorem 5.2: links between levels break security). That is
	// exactly what the guard is for — it refuses every realisation, so
	// the audit stays clean no matter what the corrupt users try.
	fmt.Printf("\nwired graph: can.know(intern, merger_plan) = %v (latent danger)\n",
		sys.CanKnow(intern, merger))
	fmt.Printf("guarded execution: audit violations = %d — the monitor is the hierarchy\n",
		len(sys.Audit()))
}

func mustApply(sys *takegrant.System, app takegrant.Application) {
	if err := sys.Apply(app); err != nil {
		log.Fatal(err)
	}
}

func firstLine(s string) string {
	for i, c := range s {
		if c == '\n' {
			return s[:i]
		}
	}
	return s
}
