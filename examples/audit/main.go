// Audit: a security review of a protection graph from a .tg file (a
// built-in specimen is used when no file is given). The program prints
// the level structure as a Hasse diagram, audits the graph against the
// combined restriction, lists each subject's rights-amplification profile
// — everything it could EVER acquire under unrestricted rules, not just
// what it holds — and flags the worst finding with a concrete, replayable
// attack derivation.
package main

import (
	"fmt"
	"log"
	"os"

	"takegrant"
)

const specimen = `
# A two-level shop with a dangerous take edge left by a migration.
right e
subject admin
subject dev
object prod_db
object dev_db
edge admin prod_db r,w
edge dev dev_db r,w
edge admin dev_db r
edge dev admin t      # the misconfiguration
`

func main() {
	var (
		g   *takegrant.Graph
		err error
	)
	if len(os.Args) > 1 {
		f, ferr := os.Open(os.Args[1])
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		g, err = takegrant.ParseGraph(f)
	} else {
		g, err = takegrant.ParseGraphString(specimen)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Graph:")
	fmt.Println(takegrant.Render(g))

	s := takegrant.AnalyzeRW(g)
	fmt.Println("Classification (de facto levels, Hasse diagram):")
	fmt.Println(s.Hasse())

	fmt.Println("Static security:")
	if ok, viol := takegrant.Secure(g); ok {
		fmt.Println("  secure — no vertex can ever know above its level")
	} else {
		fmt.Printf("  INSECURE: %s can come to know %s\n",
			g.Name(viol.Lower), g.Name(viol.Upper))
	}

	fmt.Println("\nRights-amplification profiles (can•share closure):")
	for _, sub := range g.Subjects() {
		fmt.Printf("  %s:\n", g.Name(sub))
		for _, a := range takegrant.RightsProfile(g, sub) {
			marker := "could acquire"
			if a.Held {
				marker = "holds"
			}
			fmt.Printf("    %-14s %s to %s\n", marker, g.Universe().Name(a.Right), g.Name(a.Target))
		}
	}

	// The concrete finding: can the dev read prod?
	dev, okDev := g.Lookup("dev")
	prod, okProd := g.Lookup("prod_db")
	if okDev && okProd && takegrant.CanShare(g, takegrant.Read, dev, prod) {
		fmt.Println("\nFINDING: dev can acquire read access to prod_db. Attack derivation:")
		d, err := takegrant.ExplainShare(g, takegrant.Read, dev, prod)
		if err != nil {
			log.Fatal(err)
		}
		clone := g.Clone()
		if _, err := d.Replay(clone); err != nil {
			log.Fatal(err)
		}
		fmt.Print(d.Format(clone))
		if takegrant.CanSteal(g, takegrant.Read, dev, prod) {
			fmt.Println("worse: this is a THEFT — the admin never has to cooperate")
		}
	}
}
