// Conspiracy: the paper's motivating comparison (§1–2, Figure 2.1).
//
// Wu's hierarchical protection system wires the hierarchy with de jure
// authority — supervisors take from their reports, reports grant up to
// their supervisors. It looks orderly, but a take or grant edge between
// two subjects is a bridge: two directly connected conspirators can share
// *all* their rights (Lemmas 2.1/2.2), and chains of bridges connect every
// level. This program synthesises the actual rule derivation by which the
// lowest clerk steals read access to the chairman's document, replays it,
// and then shows the same workload in the paper's §4 construction, where
// the theft is impossible no matter how many subjects conspire.
package main

import (
	"fmt"
	"log"

	"takegrant"
)

func main() {
	fmt.Println("=== Wu-style hierarchy (de jure wiring) ===")
	wuDemo()
	fmt.Println()
	fmt.Println("=== The paper's §4 hierarchy (de facto wiring) ===")
	bishopDemo()
}

func wuDemo() {
	g := takegrant.NewGraph(nil)
	// Three levels: chairman > manager > clerk, one document each.
	chairman := g.MustSubject("chairman")
	manager := g.MustSubject("manager")
	clerk := g.MustSubject("clerk")
	warplan := g.MustObject("warplan")
	memo := g.MustObject("memo")
	todo := g.MustObject("todo")
	for _, p := range []struct {
		s, o takegrant.ID
	}{{chairman, warplan}, {manager, memo}, {clerk, todo}} {
		g.AddExplicit(p.s, p.o, takegrant.Of(takegrant.Read, takegrant.Write))
	}
	// Wu wiring: take down, grant up.
	g.AddExplicit(chairman, manager, takegrant.Of(takegrant.Take))
	g.AddExplicit(manager, clerk, takegrant.Of(takegrant.Take))
	g.AddExplicit(manager, chairman, takegrant.Of(takegrant.Grant))
	g.AddExplicit(clerk, manager, takegrant.Of(takegrant.Grant))

	fmt.Println(takegrant.Render(g))
	if !takegrant.CanShare(g, takegrant.Read, clerk, warplan) {
		log.Fatal("expected the clerk to be able to steal the warplan")
	}
	d, err := takegrant.ExplainShare(g, takegrant.Read, clerk, warplan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clerk steals read access to the warplan in %d steps:\n", len(d))
	clone := g.Clone()
	if _, err := d.Replay(clone); err != nil {
		log.Fatal(err)
	}
	fmt.Print(d.Format(clone))
	if !clone.Explicit(clerk, warplan).Has(takegrant.Read) {
		log.Fatal("derivation did not deliver")
	}
	fmt.Println("replayed: clerk now reads the warplan — the hierarchy is fiction")
}

func bishopDemo() {
	c, err := takegrant.BuildLinear(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	g := c.G
	clerk := c.Members["L1"][0]
	warplan := c.Bulletin["L3"]
	fmt.Println(takegrant.Render(g))
	fmt.Printf("can.share(r, clerk, warplan) = %v\n",
		takegrant.CanShare(g, takegrant.Read, clerk, warplan))
	fmt.Printf("can.know(clerk, warplan)     = %v\n",
		takegrant.CanKnow(g, clerk, warplan))
	if ok, _ := takegrant.Secure(g); ok {
		fmt.Println("secure: true — Theorem 4.3: no conspiracy can leak downward")
	}
	// Even the de facto conspirator count confirms it: upward costs a
	// bounded chain, downward has none at any size.
	if n, chain, ok := takegrant.MinConspirators(g, c.Members["L3"][0], c.Bulletin["L1"]); ok {
		names := make([]string, len(chain))
		for i, v := range chain {
			names[i] = g.Name(v)
		}
		fmt.Printf("upward flow needs %d conspirators: %v\n", n, names)
	}
	if _, _, ok := takegrant.MinConspirators(g, clerk, warplan); !ok {
		fmt.Println("downward flow: impossible at any conspiracy size")
	}
}
