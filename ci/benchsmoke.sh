#!/usr/bin/env bash
# Bench regression gate: regenerate the tgbench report and diff the
# guarded experiments (E8 audit scaling, E9 O(1) guard, E20 flat
# derivation, E21 incremental apply throughput, E22 instrumentation
# overhead, E23 warm closure-verdict flatness, E24 bulk-load linearity
# at 1e6 vertices, E25 warm verdict p99 flat at scale) against the
# committed baseline. Fails on a >3x slowdown or a
# no-longer-passing experiment — E22's pass bit is where the ≤100ns/op
# histogram-observe budget is enforced, and E24's is where the
# single-digit-second 1e6 cold install lives; see ci/benchdiff for the
# rationale and thresholds.
set -euo pipefail
cd "$(dirname "$0")/.."

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

go run ./cmd/tgbench -json > "$fresh"
go run ./ci/benchdiff BENCH_PR10.json "$fresh"
