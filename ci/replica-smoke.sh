#!/usr/bin/env bash
# Replication smoke test: boot a journaled leader and a -replica-of
# follower over real HTTP, mutate two namespaces on the leader, kill the
# follower with SIGKILL mid-catch-up, restart it, and assert it converges
# to the leader's exact revision and answers every query in
# replica-queries.txt byte-identically — while refusing mutations with
# 503 read_only.
set -euo pipefail

cd "$(dirname "$0")/.."
L_ADDR="127.0.0.1:18468"
F_ADDR="127.0.0.1:18469"
LEADER="http://$L_ADDR"
FOLLOWER="http://$F_ADDR"
DATA="$(mktemp -d)"
L_LOG="$DATA/leader.log"
F_LOG="$DATA/follower.log"
trap 'kill -9 "${L_PID:-0}" "${F_PID:-0}" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/tgserve" ./cmd/tgserve

wait_up() { # wait_up <base-url> <log>
  for _ in $(seq 1 50); do
    if curl -sf "$1/stats" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server at $1 did not come up; log:" >&2
  cat "$2" >&2
  exit 1
}

rev_of() { # rev_of <base-url> — top-level (default-namespace) revision
  curl -sf "$1/stats" | tr ',{' '\n\n' | grep '"revision":' | head -1 | sed 's/.*://; s/[^0-9]//g'
}

# curl_has <url> <grep-pattern> — check a response body for a pattern.
# The body is captured first: under pipefail, `curl | grep -q` flakes
# because grep exits at the first match and curl dies on the EPIPE.
curl_has() {
  local body
  body=$(curl -sf "$1") || return 1
  printf '%s\n' "$body" | grep -q "$2"
}

"$DATA/tgserve" -addr "$L_ADDR" -data "$DATA/journal" -specimen fig61 -quiet >"$L_LOG" 2>&1 &
L_PID=$!
wait_up "$LEADER" "$L_LOG"

# A second namespace on the leader (same document, independent state).
curl -sf "$LEADER/graph" | curl -sf -X PUT --data-binary @- \
  -H 'Content-Type: text/plain' "$LEADER/graph?ns=tenant1" >/dev/null

# A batch of mutations in both namespaces.
for i in $(seq 1 8); do
  for ns in "" "?ns=tenant1"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$LEADER/apply$ns" \
      -H 'Content-Type: application/json' \
      -d "{\"op\":\"create\",\"x\":\"low\",\"name\":\"smoke$i\",\"kind\":\"object\",\"rights\":\"r,w\"}")
    [ "$code" = 200 ] || { echo "leader apply $i$ns: HTTP $code" >&2; exit 1; }
  done
done
L_REV=$(rev_of "$LEADER")

# Follower comes up, starts catching up — and is SIGKILLed mid-flight.
"$DATA/tgserve" -addr "$F_ADDR" -replica-of "$LEADER" -replica-poll 50ms -quiet >"$F_LOG" 2>&1 &
F_PID=$!
sleep 0.3
kill -9 "$F_PID"
wait "$F_PID" 2>/dev/null || true

# More leader traffic while the follower is down: the restarted follower
# must cover both what it may have replayed before dying and what it missed.
for i in $(seq 9 12); do
  curl -s -o /dev/null -X POST "$LEADER/apply" -H 'Content-Type: application/json' \
    -d "{\"op\":\"create\",\"x\":\"low\",\"name\":\"smoke$i\",\"kind\":\"object\",\"rights\":\"r,w\"}"
done
L_REV=$(rev_of "$LEADER")

# Restart: a replica has no journal, so it simply re-bootstraps from the
# leader and converges.
"$DATA/tgserve" -addr "$F_ADDR" -replica-of "$LEADER" -replica-poll 50ms -quiet >>"$F_LOG" 2>&1 &
F_PID=$!
wait_up "$FOLLOWER" "$F_LOG"

converged=0
for _ in $(seq 1 100); do
  if [ "$(rev_of "$FOLLOWER")" = "$L_REV" ]; then converged=1; break; fi
  sleep 0.1
done
[ "$converged" = 1 ] || {
  echo "follower never reached leader revision $L_REV (at $(rev_of "$FOLLOWER"))" >&2
  echo "--- follower log ---" >&2; cat "$F_LOG" >&2
  exit 1
}

fail=0
# Every query in the shared file must answer byte-identically.
while IFS= read -r q; do
  case "$q" in ''|\#*) continue;; esac
  l_body=$(curl -s "$LEADER$q")
  f_body=$(curl -s "$FOLLOWER$q")
  [ "$l_body" = "$f_body" ] || { echo "verdict diverges for $q:" >&2; echo " leader:   $l_body" >&2; echo " follower: $f_body" >&2; fail=1; }
done < ci/replica-queries.txt

# Mutations on the follower: refused with 503 read_only.
f_code=$(curl -s -o "$DATA/ro.json" -w '%{http_code}' -X POST "$FOLLOWER/apply" \
  -H 'Content-Type: application/json' \
  -d '{"op":"create","x":"low","name":"nope","rights":"r"}')
[ "$f_code" = 503 ] || { echo "follower POST /apply: HTTP $f_code, want 503" >&2; fail=1; }
grep -q read_only "$DATA/ro.json" || { echo "follower refusal lacks read_only code: $(cat "$DATA/ro.json")" >&2; fail=1; }

# Replication lag must be exposed (and zero once converged).
curl_has "$FOLLOWER/metrics" '^takegrant_replication_lag_seconds 0' \
  || { echo "follower /metrics lacks takegrant_replication_lag_seconds 0" >&2; fail=1; }

# Both expositions must satisfy the Prometheus contract under real
# replication traffic (histograms included) — see ci/metricslint.
go run ./ci/metricslint "$LEADER/metrics"   || fail=1
go run ./ci/metricslint "$FOLLOWER/metrics" || fail=1

# tgtop's scriptable mode must render the whole fleet in one frame:
# leader and replica rows, no DOWN column.
TGTOP_OUT="$DATA/tgtop.txt"
go run ./cmd/tgtop -nodes "$LEADER,$FOLLOWER" -once > "$TGTOP_OUT" || { echo "tgtop -once failed" >&2; fail=1; }
grep -q 'leader'  "$TGTOP_OUT" || { echo "tgtop frame lacks a leader row" >&2;  cat "$TGTOP_OUT" >&2; fail=1; }
grep -q 'replica' "$TGTOP_OUT" || { echo "tgtop frame lacks a replica row" >&2; cat "$TGTOP_OUT" >&2; fail=1; }
grep -q 'DOWN' "$TGTOP_OUT" && { echo "tgtop reports a node DOWN" >&2; cat "$TGTOP_OUT" >&2; fail=1; }

if [ "$fail" != 0 ]; then
  echo "--- leader log ---" >&2;   cat "$L_LOG" >&2
  echo "--- follower log ---" >&2; cat "$F_LOG" >&2
  exit 1
fi
echo "replica smoke: OK (follower converged to revision $L_REV after kill -9; verdicts identical; mutations 503 read_only)"
