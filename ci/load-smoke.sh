#!/usr/bin/env bash
# Load smoke: generate a small doc-share world with tgload's scenario
# generator, bulk-install it over the binary PUT path, and drive an
# open-loop mixed workload (80% reads, 10% mutations, 10% batches) at a
# modest rate for 30 seconds against a tgserve pinned under GOMEMLIMIT.
# The gate (ci/loadcheck) fails on an error rate above 1%, a client p99
# above 2s, a completed fraction below 90%, or any saturated arrivals —
# and the script itself fails if the server process died mid-soak (the
# GOMEMLIMIT pin turns a memory-hungry regression into a visible OOM
# kill instead of a quietly swapping runner).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18471"
BASE="http://$ADDR"
DATA="$(mktemp -d)"
LOG="$DATA/serve.log"
trap 'kill -9 "${S_PID:-0}" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/tgserve" ./cmd/tgserve
go build -o "$DATA/tgload" ./cmd/tgload

# A 2000-vertex doc-share world: big enough that queries traverse real
# structure, small enough that a shared runner absorbs the rate easily.
"$DATA/tgload" -gen doc-share -n 2000 -seed 7 -o "$DATA/world.tgb"

GOMEMLIMIT=512MiB "$DATA/tgserve" -addr "$ADDR" -quiet >"$LOG" 2>&1 &
S_PID=$!
for _ in $(seq 1 50); do
  if curl -sf "$BASE/stats" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "$BASE/stats" >/dev/null 2>&1 || {
  echo "tgserve did not come up; log:" >&2
  cat "$LOG" >&2
  exit 1
}

"$DATA/tgload" -addr "$BASE" -world "$DATA/world.tgb" \
  -duration 30s -rate 80 -seed 7 -report "$DATA/report.json"

# The soak must not have killed the server (OOM under GOMEMLIMIT, panic).
kill -0 "$S_PID" 2>/dev/null || {
  echo "tgserve died during the soak; log:" >&2
  cat "$LOG" >&2
  exit 1
}

go run ./ci/loadcheck "$DATA/report.json" || {
  echo "--- tgload report ---" >&2
  cat "$DATA/report.json" >&2
  echo "--- server log ---" >&2
  cat "$LOG" >&2
  exit 1
}
echo "load smoke: OK (30s open-loop soak at 80 req/s over a 2000-vertex doc-share world)"
