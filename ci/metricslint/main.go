// Command metricslint scrapes a live /metrics endpoint (or reads a file)
// and fails if the exposition violates the Prometheus text-format
// contract: families must be contiguous under a single TYPE header,
// labels well-formed and unduplicated, counters finite and non-negative,
// and every histogram internally consistent — ascending le bounds,
// non-decreasing cumulative counts, a +Inf bucket agreeing with _count,
// and _sum/_count present. It is the CI tripwire for the bug class a
// human eyeballing a scrape never catches: a refactor that interleaves
// families or drops a histogram's +Inf bucket still "looks fine" in curl
// output but silently breaks real scrapers and the fleet-merge arithmetic
// tgtop runs on the buckets.
//
// Usage:
//
//	metricslint http://127.0.0.1:8080/metrics
//	metricslint scrape.txt
//
// Exit status 1 on lint violations (each reported on stderr), 2 when the
// target cannot be fetched or parsed at all.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"takegrant/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricslint <url-or-file>")
		os.Exit(2)
	}
	target := os.Args[1]
	var body []byte
	var err error
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		client := &http.Client{Timeout: 5 * time.Second}
		var resp *http.Response
		if resp, err = client.Get(target); err == nil {
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("HTTP %d", resp.StatusCode)
			} else {
				body, err = io.ReadAll(resp.Body)
			}
			resp.Body.Close()
		}
	} else {
		body, err = os.ReadFile(target)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", target, err)
		os.Exit(2)
	}

	fams, err := obs.ParseProm(string(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", target, err)
		os.Exit(2)
	}
	if errs := obs.LintProm(string(body)); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "metricslint: %v\n", e)
		}
		os.Exit(1)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Series)
	}
	fmt.Printf("metricslint: %s OK (%d families, %d series)\n", target, len(fams), samples)
}
