#!/usr/bin/env bash
# Chaos smoke test: the failover story over real HTTP and real processes.
# A journaled leader takes writes and ships them to a follower; the leader
# is SIGKILLed mid-write; the follower is promoted (epoch 1 -> 2) and must
# serve mutations, ship byte-identical state to a fresh second-generation
# follower, and agree with it on the anti-entropy digest. The old leader is
# then restarted from its journal and must be fenced: a caller that has
# seen epoch 2 gets 409 stale_epoch. Health endpoints and the Prometheus
# contract are asserted along the way.
set -euo pipefail

cd "$(dirname "$0")/.."
A_ADDR="127.0.0.1:18471"
B_ADDR="127.0.0.1:18472"
C_ADDR="127.0.0.1:18473"
A="http://$A_ADDR"
B="http://$B_ADDR"
C="http://$C_ADDR"
DATA="$(mktemp -d)"
A_LOG="$DATA/a.log"; B_LOG="$DATA/b.log"; C_LOG="$DATA/c.log"
trap 'kill -9 "${A_PID:-0}" "${B_PID:-0}" "${C_PID:-0}" "${W_PID:-0}" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/tgserve" ./cmd/tgserve

wait_up() { # wait_up <base-url> <log>
  for _ in $(seq 1 50); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server at $1 did not come up; log:" >&2
  cat "$2" >&2
  exit 1
}

rev_of() { # rev_of <base-url> — top-level (default-namespace) revision
  curl -sf "$1/stats" | tr ',{' '\n\n' | grep '"revision":' | head -1 | sed 's/.*://; s/[^0-9]//g'
}

# curl_has <url> <grep-pattern> — check a response body for a pattern.
# The body is captured first: under pipefail, `curl | grep -q` flakes
# because grep exits at the first match and curl dies on the EPIPE.
curl_has() {
  local body
  body=$(curl -sf "$1") || return 1
  printf '%s\n' "$body" | grep -q "$2"
}

fail=0

# --- Act 1: a leader under write load, with a follower tailing it. ---
"$DATA/tgserve" -addr "$A_ADDR" -data "$DATA/journal-a" -specimen fig61 -quiet >"$A_LOG" 2>&1 &
A_PID=$!
wait_up "$A" "$A_LOG"

for i in $(seq 1 6); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$A/apply" \
    -H 'Content-Type: application/json' \
    -d "{\"op\":\"create\",\"x\":\"low\",\"name\":\"calm$i\",\"kind\":\"object\",\"rights\":\"r,w\"}")
  [ "$code" = 200 ] || { echo "leader apply $i: HTTP $code" >&2; exit 1; }
done

"$DATA/tgserve" -addr "$B_ADDR" -replica-of "$A" -replica-poll 25ms \
  -promote-data "$DATA/journal-b" -scrub-interval 100ms -quiet >"$B_LOG" 2>&1 &
B_PID=$!
wait_up "$B" "$B_LOG"

# The follower reports itself ready only once caught up.
for _ in $(seq 1 100); do
  if curl -sf "$B/readyz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "$B/readyz" >/dev/null || { echo "follower never became ready" >&2; cat "$B_LOG" >&2; exit 1; }

# --- Act 2: kill the leader mid-write. ---
( i=100
  while :; do
    curl -s -o /dev/null -X POST "$A/apply" -H 'Content-Type: application/json' \
      -d "{\"op\":\"create\",\"x\":\"low\",\"name\":\"storm$i\",\"kind\":\"object\",\"rights\":\"r,w\"}" || true
    i=$((i+1))
  done ) &
W_PID=$!
sleep 0.5
kill -9 "$A_PID"
wait "$A_PID" 2>/dev/null || true
kill "$W_PID" 2>/dev/null || true
wait "$W_PID" 2>/dev/null || true

# --- Act 3: promote the follower. ---
# Retry: the follower may need a beat to notice it is level with what the
# dead leader managed to ack.
promoted=0
for _ in $(seq 1 50); do
  code=$(curl -s -o "$DATA/promote.json" -w '%{http_code}' -X POST "$B/admin/promote" \
    -H 'Content-Type: application/json' -d '{}')
  if [ "$code" = 200 ]; then promoted=1; break; fi
  sleep 0.1
done
[ "$promoted" = 1 ] || { echo "promotion never succeeded: $(cat "$DATA/promote.json")" >&2; cat "$B_LOG" >&2; exit 1; }
grep -q '"epoch":2' "$DATA/promote.json" || { echo "promotion result lacks epoch 2: $(cat "$DATA/promote.json")" >&2; exit 1; }

# The promoted node is a leader: ready, role leader, and writable.
curl_has "$B/readyz" '"role":"leader"' || { echo "promoted node readyz is not leader: $(curl -s "$B/readyz")" >&2; fail=1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$B/apply" \
  -H 'Content-Type: application/json' \
  -d '{"op":"create","x":"low","name":"post_promote","kind":"object","rights":"r,w"}')
[ "$code" = 200 ] || { echo "promoted leader POST /apply: HTTP $code, want 200" >&2; fail=1; }
curl_has "$B/metrics" '^takegrant_epoch 2' || { echo "promoted /metrics lacks takegrant_epoch 2" >&2; fail=1; }

# --- Act 4: a second-generation follower of the promoted leader. ---
"$DATA/tgserve" -addr "$C_ADDR" -replica-of "$B" -replica-poll 25ms -quiet >"$C_LOG" 2>&1 &
C_PID=$!
wait_up "$C" "$C_LOG"
B_REV=$(rev_of "$B")
converged=0
for _ in $(seq 1 100); do
  if [ "$(rev_of "$C")" = "$B_REV" ]; then converged=1; break; fi
  sleep 0.1
done
[ "$converged" = 1 ] || {
  echo "second-generation follower never reached revision $B_REV (at $(rev_of "$C"))" >&2
  cat "$C_LOG" >&2; exit 1
}

# Byte-identical verdicts across the promotion chain.
while IFS= read -r q; do
  case "$q" in ''|\#*) continue;; esac
  b_body=$(curl -s "$B$q")
  c_body=$(curl -s "$C$q")
  [ "$b_body" = "$c_body" ] || { echo "verdict diverges for $q:" >&2; echo " promoted:  $b_body" >&2; echo " follower:  $c_body" >&2; fail=1; }
done < ci/replica-queries.txt

# Anti-entropy agrees: same digest at the same revision.
b_digest=$(curl -sf "$B/replication/digest")
c_digest=$(curl -sf "$C/replication/digest")
[ "$b_digest" = "$c_digest" ] || { echo "digest mismatch:" >&2; echo " promoted: $b_digest" >&2; echo " follower: $c_digest" >&2; fail=1; }

# The second-generation follower tracks the promoted epoch.
curl_has "$C/metrics" '^takegrant_replication_leader_epoch 2' \
  || { echo "follower /metrics lacks takegrant_replication_leader_epoch 2" >&2; fail=1; }

# --- Act 5: the old leader rises from its journal — and is fenced. ---
"$DATA/tgserve" -addr "$A_ADDR" -data "$DATA/journal-a" -quiet >>"$A_LOG" 2>&1 &
A_PID=$!
wait_up "$A" "$A_LOG"
code=$(curl -s -o "$DATA/fence.json" -w '%{http_code}' "$A/replication/namespaces?epoch=2")
[ "$code" = 409 ] || { echo "stale leader with epoch-2 claim: HTTP $code, want 409" >&2; fail=1; }
grep -q stale_epoch "$DATA/fence.json" || { echo "fence refusal lacks stale_epoch: $(cat "$DATA/fence.json")" >&2; fail=1; }
# Without an epoch claim the old leader still answers (pre-epoch compat).
curl -sf "$A/replication/namespaces" >/dev/null || { echo "old leader refuses epoch-less replication reads" >&2; fail=1; }

# The background scrubber ran on the promoted node and found nothing.
curl_has "$B/metrics" '^takegrant_scrub_mismatch_total 0' \
  || { echo "promoted /metrics lacks takegrant_scrub_mismatch_total 0" >&2; fail=1; }

# Liveness stays green everywhere; the Prometheus contract holds under
# post-failover traffic on every node.
for node in "$A" "$B" "$C"; do
  curl -sf "$node/healthz" >/dev/null || { echo "$node /healthz failed" >&2; fail=1; }
  go run ./ci/metricslint "$node/metrics" || fail=1
done

if [ "$fail" != 0 ]; then
  echo "--- old leader log ---" >&2; cat "$A_LOG" >&2
  echo "--- promoted log ---" >&2;   cat "$B_LOG" >&2
  echo "--- follower log ---" >&2;   cat "$C_LOG" >&2
  exit 1
fi
echo "chaos smoke: OK (leader killed mid-write; follower promoted to epoch 2; verdicts identical; digests agree; old leader fenced with 409 stale_epoch)"
