// Command loadcheck asserts a tgload JSON report describes a healthy
// soak. It exists for ci/load-smoke.sh: tgload itself is a measurement
// tool and always exits 0 when the soak ran — deciding whether the
// numbers are acceptable is the gate's job, and keeping the thresholds
// in one compiled place beats sed-ing floats out of JSON in shell.
//
// Usage:
//
//	loadcheck report.json
//
// Exit status 1 when the soak breached a threshold, 2 on bad input.
// Thresholds are deliberately loose — shared CI runners are noisy and
// the smoke drives a small world at a modest rate; the gate catches a
// server that sheds, errors, or stalls under load it should absorb
// trivially, not percent-level latency drift.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Thresholds for the smoke soak (small world, modest open-loop rate).
const (
	maxErrorRate = 0.01   // >1% transport/5xx errors = unhealthy
	maxP99Ms     = 2000.0 // client-observed total p99 ceiling
	minCompleted = 0.90   // ≥90% of offered arrivals must complete 2xx
)

type classReport struct {
	Offered   uint64  `json:"offered"`
	Completed uint64  `json:"completed"`
	Refused   uint64  `json:"refused"`
	Shed      uint64  `json:"shed"`
	Errors    uint64  `json:"errors"`
	Saturated uint64  `json:"saturated"`
	P99Ms     float64 `json:"p99_ms"`
}

type report struct {
	OfferedRate   float64     `json:"offered_rate"`
	ActualOffered float64     `json:"actual_offered"`
	CompletedRate float64     `json:"completed_rate"`
	Total         classReport `json:"total"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: loadcheck report.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadcheck:", err)
		os.Exit(2)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintln(os.Stderr, "loadcheck:", err)
		os.Exit(2)
	}
	tot := rep.Total
	if tot.Offered == 0 {
		fmt.Fprintln(os.Stderr, "loadcheck: report shows zero offered requests — the soak did not run")
		os.Exit(1)
	}
	failed := false
	check := func(ok bool, format string, args ...any) {
		status := "ok"
		if !ok {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %s\n", status, fmt.Sprintf(format, args...))
	}
	errRate := float64(tot.Errors) / float64(tot.Offered)
	check(errRate <= maxErrorRate, "error rate %.4f (%d/%d) ≤ %.2f",
		errRate, tot.Errors, tot.Offered, maxErrorRate)
	check(tot.P99Ms <= maxP99Ms, "client p99 %.1fms ≤ %.0fms", tot.P99Ms, maxP99Ms)
	completedFrac := float64(tot.Completed) / float64(tot.Offered)
	check(completedFrac >= minCompleted, "completed fraction %.4f (%d/%d) ≥ %.2f",
		completedFrac, tot.Completed, tot.Offered, minCompleted)
	check(tot.Saturated == 0, "saturated arrivals %d == 0 (in-flight cap never hit)", tot.Saturated)
	if failed {
		os.Exit(1)
	}
}
