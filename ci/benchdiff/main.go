// Command benchdiff compares a fresh `tgbench -json` run against a
// committed baseline and fails on a wall-clock regression of the guarded
// experiments. It exists for CI: the decision procedures carry asymptotic
// claims (E8 linear in edges per Corollary 5.6, E9 constant per
// Corollary 5.7), and a hot-path change that quietly triples their cost
// should break the build, not surface months later in production traces.
//
// Usage:
//
//	benchdiff baseline.json fresh.json
//
// Both files hold the tgbench -json array. Exit status 1 when any guarded
// experiment regressed beyond the threshold or stopped passing; 2 on bad
// input. The 3× threshold is deliberately loose — CI machines are noisy
// and tgbench experiments are single-shot wall-clock timings; the gate
// catches order-of-magnitude mistakes (a dropped index, an accidental
// per-call sort), not percent-level drift.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// guarded names the experiments the gate watches and the factor beyond
// which their slowdown fails the build.
var guarded = map[string]float64{
	"E8":  3.0, // audit scaling (Corollary 5.6)
	"E9":  3.0, // O(1) online guard (Corollary 5.7)
	"E20": 3.0, // flat CSR derivation vs map reference
	"E21": 3.0, // incremental engine vs per-step recompute
	"E22": 3.0, // instrumentation overhead (histogram observe ≤ 100ns budget)
	"E23": 3.0, // warm closure verdicts flat across scales (O(1)-amortized fast path)
	"E24": 3.0, // bulk load at scale (binary decode + derived-index build linearity)
	"E25": 3.0, // warm verdict p99 flat at 1e6 vertices
}

// row is the subset of tgbench's per-experiment report the gate reads.
type row struct {
	ID         string  `json:"id"`
	Title      string  `json:"title"`
	Pass       bool    `json:"pass"`
	DurationUs float64 `json:"duration_us"`
}

func load(path string) (map[string]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]row, len(rows))
	for _, r := range rows {
		out[r.ID] = r
	}
	return out, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff baseline.json fresh.json")
		os.Exit(2)
	}
	base, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	failed := false
	for _, id := range sortedKeys(guarded) {
		b, okB := base[id]
		f, okF := fresh[id]
		if !okB || !okF {
			fmt.Fprintf(os.Stderr, "benchdiff: experiment %s missing (baseline %v, fresh %v)\n", id, okB, okF)
			failed = true
			continue
		}
		ratio := f.DurationUs / b.DurationUs
		status := "ok"
		switch {
		case !f.Pass:
			status = "FAIL (experiment no longer passes)"
			failed = true
		case ratio > guarded[id]:
			status = fmt.Sprintf("FAIL (> %.1fx threshold)", guarded[id])
			failed = true
		}
		fmt.Printf("%-4s %10.1fus -> %10.1fus  %5.2fx  %s\n", id, b.DurationUs, f.DurationUs, ratio, status)
	}
	if failed {
		os.Exit(1)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}
