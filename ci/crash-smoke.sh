#!/usr/bin/env bash
# Crash-recovery smoke test: boot tgserve with a data directory, accept
# mutations over real HTTP, kill the process with SIGKILL (no drain, no
# final snapshot), restart on the same directory, and assert the revision
# and a decision verdict survived — the kill -9 contract of the journal.
set -euo pipefail

cd "$(dirname "$0")/.."
ADDR="127.0.0.1:18467"
BASE="http://$ADDR"
DATA="$(mktemp -d)"
LOG="$DATA/tgserve.log"
trap 'kill -9 "${PID:-0}" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/tgserve" ./cmd/tgserve

wait_up() {
  for _ in $(seq 1 50); do
    if curl -sf "$BASE/stats" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server did not come up; log:" >&2
  cat "$LOG" >&2
  exit 1
}

stat_field() { # stat_field <jq-ish key>  — crude extraction, no jq dependency
  curl -sf "$BASE/stats" | tr ',{' '\n\n' | grep "\"$1\":" | head -1 | sed 's/.*://; s/[^0-9]//g'
}

"$DATA/tgserve" -addr "$ADDR" -data "$DATA/journal" -specimen fig61 -quiet >"$LOG" 2>&1 &
PID=$!
wait_up

# Accept a batch of mutations.
for i in $(seq 1 5); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/apply" \
    -H 'Content-Type: application/json' \
    -d "{\"op\":\"create\",\"x\":\"low\",\"name\":\"smoke$i\",\"kind\":\"object\",\"rights\":\"r,w\"}")
  [ "$code" = 200 ] || { echo "apply $i: HTTP $code" >&2; exit 1; }
done

REV_BEFORE=$(stat_field revision)
VERTS_BEFORE=$(stat_field vertices)
VERDICT_BEFORE=$(curl -sf "$BASE/query/can-share?right=r&x=low&y=secret")
GRAPH_BEFORE=$(curl -sf "$BASE/graph")

# The exposition under traffic must satisfy the Prometheus contract
# (contiguous families, consistent histograms) — see ci/metricslint.
go run ./ci/metricslint "$BASE/metrics"

# Crash: SIGKILL, no chance to flush anything beyond the per-request fsyncs.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

"$DATA/tgserve" -addr "$ADDR" -data "$DATA/journal" -quiet >>"$LOG" 2>&1 &
PID=$!
wait_up

REV_AFTER=$(stat_field revision)
VERTS_AFTER=$(stat_field vertices)
VERDICT_AFTER=$(curl -sf "$BASE/query/can-share?right=r&x=low&y=secret")
GRAPH_AFTER=$(curl -sf "$BASE/graph")

fail=0
[ "$REV_BEFORE" = "$REV_AFTER" ]         || { echo "revision $REV_BEFORE -> $REV_AFTER" >&2; fail=1; }
[ "$VERTS_BEFORE" = "$VERTS_AFTER" ]     || { echo "vertices $VERTS_BEFORE -> $VERTS_AFTER" >&2; fail=1; }
[ "$VERDICT_BEFORE" = "$VERDICT_AFTER" ] || { echo "verdict $VERDICT_BEFORE -> $VERDICT_AFTER" >&2; fail=1; }
[ "$GRAPH_BEFORE" = "$GRAPH_AFTER" ]     || { echo "canonical graph text diverged" >&2; fail=1; }
echo "$VERDICT_BEFORE" | grep -q true    || { echo "premise: verdict should be true, got $VERDICT_BEFORE" >&2; fail=1; }

# Graceful path: SIGTERM drains and snapshots; the next start replays 0 records.
kill -TERM "$PID"
for _ in $(seq 1 50); do kill -0 "$PID" 2>/dev/null || break; sleep 0.1; done
kill -0 "$PID" 2>/dev/null && { echo "SIGTERM did not stop the server" >&2; fail=1; kill -9 "$PID"; }

"$DATA/tgserve" -addr "$ADDR" -data "$DATA/journal" -quiet >>"$LOG" 2>&1 &
PID=$!
wait_up
RECOVERED=$(stat_field recovered)
REV_FINAL=$(stat_field revision)
[ "$RECOVERED" = 0 ]            || { echo "replayed $RECOVERED records after graceful stop, want 0" >&2; fail=1; }
[ "$REV_FINAL" = "$REV_BEFORE" ] || { echo "revision after graceful restart $REV_FINAL != $REV_BEFORE" >&2; fail=1; }

if [ "$fail" != 0 ]; then
  echo "--- server log ---" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "crash-recovery smoke: OK (revision $REV_BEFORE, vertices $VERTS_BEFORE survived kill -9)"
